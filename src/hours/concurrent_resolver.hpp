// Concurrent serving front-end: a sharded, RCU-published TTL answer cache
// in front of HoursSystem — the first step from "simulator" to "service
// under heavy traffic" (ROADMAP; cf. the Random Query String DoS paper's
// concern with resolver caches under high-rate query mixes).
//
// Design:
//   * The name space is split across `shard_count` shards by FNV-1a hash.
//   * Each shard publishes an immutable std::map snapshot through an
//     atomic pointer. The read path (cache hit) takes NO lock: a
//     jobs::RcuDomain read guard (two atomic stores) pins the snapshot,
//     the probe copies the records out, and the guard drops. Writers
//     copy-on-write the shard map under a per-shard mutex, swap the
//     pointer, and retire the old snapshot to the RCU domain.
//   * The miss path funnels into the single-threaded HoursSystem under one
//     authority mutex — concurrency lives in front of the hierarchy, never
//     inside one query. resolve_batch() amortizes that mutex: probe all
//     names lock-free first, then forward the misses in one batched
//     HoursSystem::lookup_batch call.
//
// Semantics match Resolver exactly (same answer_min_ttl aging, same
// evict-expired-else-earliest-expiry policy applied per shard), so a
// single-threaded trace driven through both produces identical hit/miss/
// failure counts whenever capacity never binds — the oracle property in
// tests/concurrent_resolver_test.cpp. Under eviction pressure the shard-
// local (vs. global) victim choice may differ; the bound
// cached_names() <= shard_count * ceil(capacity / shard_count) always holds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hours/hours.hpp"
#include "hours/resolver.hpp"
#include "jobs/rcu.hpp"
#include "store/record_store.hpp"

namespace hours {

class ConcurrentResolver {
 public:
  /// `capacity` bounds the total cached names (split evenly across shards);
  /// `shard_count` trades write contention against eviction locality. The
  /// system reference must outlive the resolver.
  explicit ConcurrentResolver(HoursSystem& system, std::size_t capacity = 1024,
                              unsigned shard_count = 8);
  ~ConcurrentResolver();

  ConcurrentResolver(const ConcurrentResolver&) = delete;
  ConcurrentResolver& operator=(const ConcurrentResolver&) = delete;

  /// Thread-safe resolve at client time `now`. Cache hits are lock-free;
  /// misses serialize on the authority mutex in front of HoursSystem.
  /// `now` is caller-supplied (not read from the backend) because the
  /// backend clock is not safe to touch concurrently with lookups.
  [[nodiscard]] ResolveResult resolve(std::string_view name, std::uint64_t now);

  /// Batched submission: lock-free probes first, then one authority-mutex
  /// acquisition forwarding all misses via HoursSystem::lookup_batch.
  /// Results are positionally aligned with `names`.
  [[nodiscard]] std::vector<ResolveResult> resolve_batch(const std::vector<std::string>& names,
                                                         std::uint64_t now);

  /// Lock-free cache-only probe; copies the records into `*out` (the
  /// snapshot cannot be referenced after return). Does not update stats.
  [[nodiscard]] bool peek(std::string_view name, std::uint64_t now,
                          std::vector<store::Record>* out) const;

  /// Installs an answer obtained out of band. Thread-safe.
  void insert(std::string_view name, std::uint64_t now, std::vector<store::Record> records);

  /// Arms the cache-busting defense with one digest shared by every shard:
  /// a burst detected through any shard flags the zone for all of them
  /// (the gossip-shared negative-cache digest, DESIGN.md §11).
  void set_defense(NegativeCacheDefenseConfig config) {
    defense_ = config.enabled ? std::make_shared<NegativeCacheDigest>(config) : nullptr;
  }
  /// Adopts a digest pooled with other resolver instances (null disarms).
  void share_defense(std::shared_ptr<NegativeCacheDigest> digest) {
    defense_ = std::move(digest);
  }
  [[nodiscard]] const std::shared_ptr<NegativeCacheDigest>& defense() const noexcept {
    return defense_;
  }

  /// Aggregated across shards. Individual counters are exact; a snapshot
  /// taken while writers are active is a consistent-enough sum, not an
  /// atomic cross-shard cut.
  [[nodiscard]] ResolverStats stats() const;

  [[nodiscard]] std::size_t cached_names() const;
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

 private:
  struct Entry {
    std::uint64_t expires_at = 0;
    std::vector<store::Record> records;
  };
  /// Immutable once published; replaced wholesale on every write.
  using Table = std::map<std::string, Entry, std::less<>>;

  struct Shard {
    std::mutex writer;               ///< serializes copy-on-write updates
    std::atomic<const Table*> live;  ///< readers load under an RCU guard
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> refusals{0};
  };

  [[nodiscard]] Shard& shard_of(std::string_view name) const;
  [[nodiscard]] bool probe(const Shard& shard, std::string_view name, std::uint64_t now,
                           std::vector<store::Record>* out) const;
  /// Copy-on-write insert mirroring Resolver's eviction policy, then an
  /// RCU publish + reclaim pass.
  void publish(Shard& shard, std::string_view name, Entry entry, std::uint64_t now);

  HoursSystem& system_;
  std::mutex system_mutex_;  ///< the single-consumer authority path
  std::size_t shard_capacity_;
  mutable jobs::RcuDomain rcu_;
  std::mutex rcu_writer_mutex_;  ///< serializes retire/advance across shards
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<NegativeCacheDigest> defense_;  ///< null = defense off
};

}  // namespace hours
