#include "hours/graph_backend.hpp"

#include "hours/hours.hpp"

namespace hours {

namespace {

QueryResult failed(util::Error::Code code) {
  QueryResult r;
  r.failure = code;
  return r;
}

}  // namespace

GraphBackend::GraphBackend(HoursSystem& system, std::uint64_t initial_clock)
    : system_(system),
      router_(system.hierarchy()),
      clock_(initial_clock),
      cache_bootstrap_queries_(system.registry().counter("facade.cache_bootstrap_queries")) {}

QueryResult GraphBackend::run_route(const hierarchy::NodePath& start,
                                    const hierarchy::NodePath& dest, bool record_path) {
  hierarchy::RouteOptions opts;
  opts.entrance = system_.config().entrance;
  opts.record_path = record_path;

  const hierarchy::RouteOutcome outcome = router_.route(dest, opts, {start});

  QueryResult result;
  result.delivered = outcome.delivered;
  result.failure = outcome.failure;
  result.hops = outcome.hops;
  result.hierarchical_hops = outcome.hierarchical_hops;
  result.overlay_hops = outcome.overlay_hops;
  result.inter_overlay_hops = outcome.inter_overlay_hops;
  result.backward_steps = outcome.backward_steps;
  if (record_path) {
    result.path.reserve(outcome.path.size());
    for (const auto& p : outcome.path) {
      auto name = system_.hierarchy().name_of(p);
      result.path.push_back(name.ok() ? name.value().to_string() : hierarchy::to_string(p));
    }
  }
  return result;
}

QueryResult GraphBackend::execute(const naming::Name& dest, bool record_path) {
  auto& hierarchy = system_.hierarchy();
  const auto paths = hierarchy.resolve_paths(dest);
  if (paths.empty()) return failed(util::Error::Code::kNotFound);

  if (hierarchy.root_alive()) {
    // Mesh nodes (Section 7) have several top-down paths; try the primary
    // first and fall through alternates on failure.
    QueryResult result;
    for (std::size_t attempt = 0; attempt < paths.size(); ++attempt) {
      result = run_route({}, paths[attempt], record_path);
      result.path_attempts = static_cast<std::uint32_t>(attempt + 1);
      if (result.delivered || result.failure == util::Error::Code::kDead) break;
    }
    if (result.delivered) {
      // Clients cache "the root node or a few frequently visited level-1
      // nodes" (Section 7): remember the level-1 zone as well as the
      // destination — the zone sits in the level-1 overlay, which lies on
      // every top-down path and therefore bootstraps any future query.
      system_.cache_bootstrap(dest.to_string());
      if (dest.depth() > 1) {
        system_.cache_bootstrap(dest.ancestor_at(1).to_string());
      }
    }
    return result;
  }

  // Root is down: bootstrap from cached nodes (Section 7) — any cached node
  // whose overlay lies on the destination's top-down path can start the
  // query.
  cache_bootstrap_queries_.inc();
  for (const auto& cached : system_.bootstrap_cache()) {
    auto cached_name = naming::Name::parse(cached);
    if (!cached_name.ok()) continue;
    auto start = hierarchy.resolve(cached_name.value());
    if (!start.ok() || start.value().empty()) continue;
    auto alive = hierarchy.is_alive(cached_name.value());
    if (!alive.ok() || !alive.value()) continue;
    for (std::size_t attempt = 0; attempt < paths.size(); ++attempt) {
      QueryResult result = run_route(start.value(), paths[attempt], record_path);
      if (result.delivered) {
        result.path_attempts = static_cast<std::uint32_t>(attempt + 1);
        result.used_bootstrap_cache = true;
        system_.cache_bootstrap(dest.to_string());
        return result;
      }
      if (result.failure == util::Error::Code::kDead) return result;
    }
  }
  return failed(util::Error::Code::kDead);  // no usable entry point
}

QueryResult GraphBackend::execute_from(const naming::Name& start, const naming::Name& dest,
                                       bool record_path) {
  auto start_path = system_.hierarchy().resolve(start);
  if (!start_path.ok()) return failed(start_path.error().code);
  auto dest_path = system_.hierarchy().resolve(dest);
  if (!dest_path.ok()) return failed(dest_path.error().code);
  return run_route(start_path.value(), dest_path.value(), record_path);
}

}  // namespace hours
