// The original facade engine: an instantaneous graph walk over
// hierarchy::Router with oracle liveness (a node is down iff the hierarchy
// says so; queries cost zero time and never retransmit). Behavior is
// bit-identical to the pre-QueryBackend HoursSystem::query internals.
#pragma once

#include <cstdint>

#include "hierarchy/router.hpp"
#include "hours/query_backend.hpp"
#include "trace/registry.hpp"

namespace hours {

class HoursSystem;

class GraphBackend final : public QueryBackend {
 public:
  explicit GraphBackend(HoursSystem& system, std::uint64_t initial_clock = 0);

  [[nodiscard]] std::string_view kind() const noexcept override { return "graph"; }
  [[nodiscard]] std::uint64_t now() const noexcept override { return clock_; }
  void advance(std::uint64_t seconds) override { clock_ += seconds; }

  [[nodiscard]] QueryResult execute(const naming::Name& dest, bool record_path) override;
  [[nodiscard]] QueryResult execute_from(const naming::Name& start, const naming::Name& dest,
                                         bool record_path) override;

 private:
  [[nodiscard]] QueryResult run_route(const hierarchy::NodePath& start,
                                      const hierarchy::NodePath& dest, bool record_path);

  HoursSystem& system_;
  hierarchy::Router router_;
  std::uint64_t clock_;
  trace::Counter cache_bootstrap_queries_;  // shares the facade's registry slot
};

}  // namespace hours
