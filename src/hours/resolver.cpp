#include "hours/resolver.hpp"

#include <algorithm>

namespace hours {

namespace {

/// Minimum TTL over the answer's records; answers without records get a
/// short negative-style TTL (60s) so existence checks still benefit. No
/// sentinel: a record whose TTL *is* 60 participates in the minimum like
/// any other value.
std::uint64_t min_ttl(const std::vector<store::Record>& records) {
  std::uint64_t ttl = ~std::uint64_t{0};
  for (const auto& r : records) ttl = std::min<std::uint64_t>(ttl, r.ttl);
  return records.empty() ? 60 : ttl;
}

}  // namespace

ResolveResult Resolver::resolve(std::string_view name) { return resolve(name, system_.now()); }

const std::vector<store::Record>* Resolver::peek(std::string_view name) const {
  return peek(name, system_.now());
}

void Resolver::insert(std::string_view name, std::vector<store::Record> records) {
  insert(name, system_.now(), std::move(records));
}

ResolveResult Resolver::resolve(std::string_view name, std::uint64_t now) {
  ResolveResult result;
  const std::string key{name};

  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.expires_at > now) {
      ++stats_.cache_hits;
      result.answered = true;
      result.from_cache = true;
      result.records = it->second.records;
      return result;
    }
    cache_.erase(it);  // expired
  }

  const auto looked_up = system_.lookup(name);
  result.hops = looked_up.query.hops;
  if (!looked_up.query.delivered) {
    ++stats_.failures;
    return result;
  }

  ++stats_.cache_misses;
  result.answered = true;
  result.records = looked_up.records;

  if (cache_.size() >= capacity_) evict_expired_or_oldest(now);
  cache_[key] = Entry{now + min_ttl(result.records), result.records};
  return result;
}

const std::vector<store::Record>* Resolver::peek(std::string_view name,
                                                 std::uint64_t now) const {
  const auto it = cache_.find(std::string{name});
  if (it == cache_.end() || it->second.expires_at <= now) return nullptr;
  return &it->second.records;
}

void Resolver::insert(std::string_view name, std::uint64_t now,
                      std::vector<store::Record> records) {
  const std::uint64_t ttl = min_ttl(records);
  if (cache_.size() >= capacity_) evict_expired_or_oldest(now);
  cache_[std::string{name}] = Entry{now + ttl, std::move(records)};
}

void Resolver::evict_expired_or_oldest(std::uint64_t now) {
  // Drop everything expired; if nothing is, drop the entry closest to
  // expiry. Linear scan: client caches are small.
  bool dropped = false;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.expires_at <= now) {
      it = cache_.erase(it);
      ++stats_.evictions;
      dropped = true;
    } else {
      ++it;
    }
  }
  if (dropped || cache_.empty()) return;
  const auto victim = std::min_element(
      cache_.begin(), cache_.end(),
      [](const auto& a, const auto& b) { return a.second.expires_at < b.second.expires_at; });
  cache_.erase(victim);
  ++stats_.evictions;
}

}  // namespace hours
