#include "hours/resolver.hpp"

#include <algorithm>

namespace hours {

std::uint64_t answer_min_ttl(const std::vector<store::Record>& records) noexcept {
  std::uint64_t ttl = ~std::uint64_t{0};
  for (const auto& r : records) ttl = std::min<std::uint64_t>(ttl, r.ttl);
  return records.empty() ? 60 : ttl;
}

std::string_view NegativeCacheDigest::zone_of(std::string_view name) noexcept {
  const auto dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(dot + 1);
}

bool NegativeCacheDigest::flagged(std::string_view zone, std::uint64_t now) const {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = zones_.find(zone);
  return it != zones_.end() && it->second.flagged_until > now;
}

bool NegativeCacheDigest::record_miss(std::string_view zone, std::string_view name,
                                      std::uint64_t now) {
  std::lock_guard<std::mutex> lock{mutex_};
  ZoneTrack& track = zones_[std::string{zone}];
  for (auto it = track.recent.begin(); it != track.recent.end();) {
    if (it->second + config_.window <= now) {
      it = track.recent.erase(it);
    } else {
      ++it;
    }
  }
  track.recent[std::string{name}] = now;
  if (track.recent.size() < config_.distinct_miss_threshold) return false;
  track.flagged_until = now + config_.flag_ttl;
  track.recent.clear();
  ++zones_flagged_;
  return true;
}

std::uint64_t NegativeCacheDigest::zones_flagged() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return zones_flagged_;
}

ResolveResult Resolver::resolve(std::string_view name) { return resolve(name, system_.now()); }

const std::vector<store::Record>* Resolver::peek(std::string_view name) const {
  return peek(name, system_.now());
}

void Resolver::insert(std::string_view name, std::vector<store::Record> records) {
  insert(name, system_.now(), std::move(records));
}

ResolveResult Resolver::resolve(std::string_view name, std::uint64_t now) {
  ResolveResult result;
  const std::string key{name};

  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.expires_at > now) {
      ++stats_.cache_hits;
      result.answered = true;
      result.from_cache = true;
      result.records = it->second.records;
      return result;
    }
    cache_.erase(it);  // expired
  }

  // Defense gate on the miss path only: cached answers for a flagged zone
  // keep serving (legitimate hot names stay warm); what a flag denies is the
  // authoritative lookup + eviction the attacker is really after.
  if (defense_ != nullptr && defense_->config().enabled) {
    const auto zone = NegativeCacheDigest::zone_of(name);
    if (defense_->flagged(zone, now)) {
      ++stats_.refusals;
      return result;
    }
  }

  const auto looked_up = system_.lookup(name);
  result.hops = looked_up.query.hops;
  if (defense_ != nullptr && defense_->config().enabled) {
    (void)defense_->record_miss(NegativeCacheDigest::zone_of(name), name, now);
  }
  if (!looked_up.query.delivered) {
    ++stats_.failures;
    return result;
  }

  ++stats_.cache_misses;
  result.answered = true;
  result.records = looked_up.records;

  if (cache_.size() >= capacity_) evict_expired_or_oldest(now);
  cache_[key] = Entry{now + answer_min_ttl(result.records), result.records};
  return result;
}

const std::vector<store::Record>* Resolver::peek(std::string_view name,
                                                 std::uint64_t now) const {
  const auto it = cache_.find(std::string{name});
  if (it == cache_.end() || it->second.expires_at <= now) return nullptr;
  return &it->second.records;
}

void Resolver::insert(std::string_view name, std::uint64_t now,
                      std::vector<store::Record> records) {
  const std::uint64_t ttl = answer_min_ttl(records);
  if (cache_.size() >= capacity_) evict_expired_or_oldest(now);
  cache_[std::string{name}] = Entry{now + ttl, std::move(records)};
}

void Resolver::evict_expired_or_oldest(std::uint64_t now) {
  // Drop everything expired; if nothing is, drop the entry closest to
  // expiry. Linear scan: client caches are small.
  bool dropped = false;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.expires_at <= now) {
      it = cache_.erase(it);
      ++stats_.evictions;
      dropped = true;
    } else {
      ++it;
    }
  }
  if (dropped || cache_.empty()) return;
  const auto victim = std::min_element(
      cache_.begin(), cache_.end(),
      [](const auto& a, const auto& b) { return a.second.expires_at < b.second.expires_at; });
  cache_.erase(victim);
  ++stats_.evictions;
}

snapshot::Json Resolver::to_json() const {
  using snapshot::Json;
  Json out = Json::object();
  out["capacity"] = Json(static_cast<std::uint64_t>(capacity_));
  Json cache = Json::array();  // rows [name, expires_at, [[type, value, ttl]...]]
  for (const auto& [name, entry] : cache_) {
    Json row = Json::array();
    row.push(Json(name));
    row.push(Json(entry.expires_at));
    Json records = Json::array();
    for (const auto& record : entry.records) {
      Json fields = Json::array();
      fields.push(Json(record.type));
      fields.push(Json(record.value));
      fields.push(Json(record.ttl));
      records.push(std::move(fields));
    }
    row.push(std::move(records));
    cache.push(std::move(row));
  }
  out["cache"] = std::move(cache);
  Json stats = Json::array();
  stats.push(Json(stats_.cache_hits));
  stats.push(Json(stats_.cache_misses));
  stats.push(Json(stats_.failures));
  stats.push(Json(stats_.evictions));
  out["stats"] = std::move(stats);
  return out;
}

std::string Resolver::from_json(const snapshot::Json& state) {
  using snapshot::Json;
  const Json* capacity = state.find("capacity");
  const Json* cache = state.find("cache");
  const Json* stats = state.find("stats");
  if (capacity == nullptr || !capacity->is_u64() || cache == nullptr || !cache->is_array() ||
      stats == nullptr || !stats->is_array() || stats->items().size() != 4) {
    return "resolver state malformed";
  }
  for (const auto& field : stats->items()) {
    if (!field.is_u64()) return "resolver.stats malformed";
  }
  std::map<std::string, Entry> restored;
  for (const auto& raw : cache->items()) {
    if (!raw.is_array() || raw.items().size() != 3 || !raw.items()[0].is_string() ||
        !raw.items()[1].is_u64() || !raw.items()[2].is_array()) {
      return "resolver.cache entry malformed";
    }
    Entry entry;
    entry.expires_at = raw.items()[1].as_u64();
    for (const auto& fields : raw.items()[2].items()) {
      if (!fields.is_array() || fields.items().size() != 3 || !fields.items()[0].is_string() ||
          !fields.items()[1].is_string() || !fields.items()[2].is_u64()) {
        return "resolver.cache record malformed";
      }
      store::Record record;
      record.type = fields.items()[0].as_string();
      record.value = fields.items()[1].as_string();
      record.ttl = fields.items()[2].as_u64();
      entry.records.push_back(std::move(record));
    }
    restored[raw.items()[0].as_string()] = std::move(entry);
  }
  capacity_ = static_cast<std::size_t>(capacity->as_u64());
  cache_ = std::move(restored);
  stats_.cache_hits = stats->items()[0].as_u64();
  stats_.cache_misses = stats->items()[1].as_u64();
  stats_.failures = stats->items()[2].as_u64();
  stats_.evictions = stats->items()[3].as_u64();
  return "";
}

}  // namespace hours
