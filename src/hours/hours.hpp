// Public API of the HOURS library.
//
// HoursSystem bundles a named service hierarchy (admission-controlled,
// SHA-1-indexed — Section 3), the mixed hierarchical/overlay query router
// (Sections 3.3/4.2), attack injection (Section 5's threat model) and the
// client-side bootstrap cache (Section 7) behind a name-oriented interface:
//
//   hours::HoursSystem sys;                       // enhanced design, k=5, q=10
//   sys.admit("ucla");  sys.admit("cs.ucla");  sys.admit("www.cs.ucla");
//   sys.set_alive("ucla", false);                 // DoS the level-1 zone
//   auto r = sys.query("www.cs.ucla");            // still delivered, via overlay
//   r.delivered, r.hops, r.overlay_hops, ...
//
// Scale-oriented experiments should use hierarchy::SyntheticHierarchy with
// hierarchy::Router directly; this facade favors clarity over bulk setup.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include <map>

#include "attack/attack.hpp"
#include "hierarchy/named.hpp"
#include "hierarchy/router.hpp"
#include "hours/event_backend.hpp"
#include "hours/query_backend.hpp"
#include "naming/name.hpp"
#include "overlay/params.hpp"
#include "snapshot/json.hpp"
#include "store/record_store.hpp"
#include "trace/registry.hpp"
#include "trace/sink.hpp"
#include "util/status.hpp"

namespace hours {

struct HoursConfig {
  overlay::OverlayParams overlay;  ///< design (base/enhanced), k, q, seed
  hierarchy::EntrancePolicy entrance = hierarchy::EntrancePolicy::kNearestCcwOfOd;
  /// Client-side bootstrap cache capacity (Section 7): most recently seen
  /// resolvable nodes, tried in order when the root is down.
  std::size_t bootstrap_cache_size = 8;
};

// QueryResult lives in hours/query_backend.hpp alongside the QueryBackend
// interface both engines implement.

class HoursSystem {
 public:
  explicit HoursSystem(HoursConfig config = {});

  /// Admits a node under its already-admitted parent (delegated admission
  /// control; the root exists implicitly).
  util::Result<naming::Name> admit(std::string_view name);

  /// Voluntary departure of a node and its subtree.
  util::Result<naming::Name> remove(std::string_view name);

  /// DoS semantics: the node stops responding but remains a member.
  util::Result<naming::Name> set_alive(std::string_view name, bool alive);

  /// Coordinated DoS (Section 5's attacker): shuts down `target` plus
  /// `sibling_count` of its siblings chosen per `strategy`. One attack per
  /// target at a time; lift_attack() reverses it.
  util::Result<naming::Name> strike(std::string_view target, attack::Strategy strategy,
                                    std::uint32_t sibling_count);
  util::Result<naming::Name> lift_attack(std::string_view target);

  /// Routes a query for `dest_name` from the root; if the root is down,
  /// falls back to the bootstrap cache (Section 7).
  [[nodiscard]] QueryResult query(std::string_view dest_name, bool record_path = false);

  /// Routes from an explicit bootstrap node instead of the root.
  [[nodiscard]] QueryResult query_from(std::string_view start_name, std::string_view dest_name,
                                       bool record_path = false);

  /// Adds a node to the client's bootstrap cache.
  void cache_bootstrap(std::string_view name);

  /// Most-recent-first bootstrap entries (backends walk these when the root
  /// is down).
  [[nodiscard]] const std::deque<std::string>& bootstrap_cache() const noexcept {
    return bootstrap_cache_;
  }

  // -- query engine -----------------------------------------------------------
  /// The engine executing queries; GraphBackend (instantaneous, oracle
  /// liveness) by default.
  [[nodiscard]] QueryBackend& backend() noexcept { return *backend_; }
  [[nodiscard]] const QueryBackend& backend() const noexcept { return *backend_; }

  /// Swaps in the message-level engine (sim::Simulator + QueryClient,
  /// silence-inferred liveness, FaultPlan scheduling). The clock continues
  /// from the previous backend's now(). Returns the backend for node-id
  /// lookups and engine introspection.
  EventBackend& use_event_backend(EventBackendConfig config = {});

  /// Restores the instantaneous graph engine; the clock carries over.
  void use_graph_backend();

  /// The active EventBackend, or nullptr while on the graph engine.
  [[nodiscard]] EventBackend* event_backend() noexcept { return event_backend_; }

  /// Backend clock in seconds — the time base Resolver cache TTLs use.
  [[nodiscard]] std::uint64_t now() const noexcept { return backend_->now(); }

  /// Advances the backend clock (and, on the event backend, runs the
  /// simulator across the span so fault windows open and close).
  void advance(std::uint64_t seconds) { backend_->advance(seconds); }

  /// Schedules a declarative churn/outage plan (event backend only).
  util::Result<std::size_t> schedule_faults(sim::FaultPlan plan) {
    return backend_->schedule_faults(std::move(plan));
  }

  // -- data plane -------------------------------------------------------------
  /// Attaches a record to the (already admitted) node that owns `name`.
  util::Result<naming::Name> add_record(std::string_view name, store::Record record);

  /// A routed lookup: the answer is only available if the query actually
  /// reaches the node holding it — the accessibility HOURS protects.
  struct LookupResult {
    QueryResult query;
    std::vector<store::Record> records;  ///< empty unless query.delivered
  };
  [[nodiscard]] LookupResult lookup(std::string_view name);

  /// Batched query submission: the single-consumer entry point the
  /// concurrent serving front-end (ConcurrentResolver) funnels cache
  /// misses through — one facade call per batch instead of one per query.
  /// Results align positionally with `names`. Not itself thread-safe; the
  /// caller serializes access to the facade.
  [[nodiscard]] std::vector<LookupResult> lookup_batch(const std::vector<std::string>& names);

  [[nodiscard]] const store::RecordStore& records() const noexcept { return records_; }

  [[nodiscard]] hierarchy::NamedHierarchy& hierarchy() noexcept { return hierarchy_; }
  [[nodiscard]] const HoursConfig& config() const noexcept { return config_; }

  // -- snapshot/restore --------------------------------------------------------
  // Versioned serialization of the complete facade state (docs/PROTOCOL.md
  // appendix C, "system" section): membership (names, liveness, mesh
  // registrations), records, the bootstrap cache, attack bookkeeping and its
  // RNG stream, facade metrics, the operation/qid counters, and the active
  // backend (kind, clock, and — on the event engine — its configuration and
  // every scheduled FaultPlan in describe() text form).
  //
  // restore() requires a freshly constructed, identically configured system.
  // On the event backend the simulation itself re-materializes lazily from
  // the restored membership and plans — the same semantics every membership
  // change already has (EventBackend::on_membership_change). Byte-exact
  // mid-run replay lives one layer down, in sim::Snapshotter.

  /// Writes the snapshot to `path`. Returns "" on success.
  [[nodiscard]] std::string save(const std::string& path) const;
  /// Builds the snapshot document in memory.
  [[nodiscard]] std::string save_json(snapshot::Json& doc) const;
  /// Reads and applies a snapshot written by save(). Returns "" on success;
  /// on failure the system may be partially restored — discard it.
  [[nodiscard]] std::string restore(const std::string& path);
  [[nodiscard]] std::string restore_json(const snapshot::Json& doc);

  // -- observability ----------------------------------------------------------
  /// Attach (or detach with nullptr) a tracer, propagated into the active
  /// backend. On the graph backend events are stamped with a logical
  /// operation clock; the event backend stamps with simulator ticks.
  void set_tracer(trace::Tracer* tracer) noexcept {
    trace_ = tracer;
    backend_->set_tracer(tracer);
  }
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return trace_; }
  /// Facade-level counters/histograms ("facade.*" names).
  [[nodiscard]] trace::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const trace::Registry& registry() const noexcept { return registry_; }

 private:
  /// Counts the outcome, emits kQueryDelivered/kQueryFailed, returns `result`.
  QueryResult finish_query(std::uint64_t qid, QueryResult result);
  /// The configuration echo stored in (and verified against) a snapshot.
  [[nodiscard]] snapshot::Json config_json() const;
  /// Trace timestamp from the active backend (logical op clock or sim ticks).
  [[nodiscard]] std::uint64_t stamp() { return backend_->trace_stamp(op_clock_); }

  HoursConfig config_;
  hierarchy::NamedHierarchy hierarchy_;
  std::unique_ptr<QueryBackend> backend_;  // never null after construction
  EventBackend* event_backend_ = nullptr;  // == backend_.get() when event-driven
  store::RecordStore records_;
  std::deque<std::string> bootstrap_cache_;  // most recent first
  rng::Xoshiro256 attack_rng_{0xA77ACCULL};
  std::map<std::string, std::vector<std::string>> active_attacks_;  // target -> victims

  trace::Registry registry_;
  trace::Tracer* trace_ = nullptr;
  std::uint64_t op_clock_ = 0;  ///< logical Event::at outside any simulator
  std::uint64_t next_qid_ = 1;
  trace::Counter queries_submitted_ = registry_.counter("facade.queries_submitted");
  trace::Counter queries_delivered_ = registry_.counter("facade.queries_delivered");
  trace::Counter queries_failed_ = registry_.counter("facade.queries_failed");
  trace::Counter cache_bootstrap_queries_ = registry_.counter("facade.cache_bootstrap_queries");
  trace::Counter attacks_launched_ = registry_.counter("facade.attacks_launched");
  trace::Counter attacks_lifted_ = registry_.counter("facade.attacks_lifted");
  metrics::Histogram* delivered_hops_ = &registry_.histogram("facade.delivered_hops");
};

}  // namespace hours
