// HoursSystem::save/restore — the facade-level snapshot (docs/PROTOCOL.md
// appendix C, "system" section). See the API comment in hours.hpp for the
// scope and the relationship to the byte-exact sim::Snapshotter layer.
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hours/event_backend.hpp"
#include "hours/hours.hpp"
#include "snapshot/json.hpp"
#include "snapshot/registry_io.hpp"
#include "snapshot/snapshot.hpp"

namespace hours {

namespace {

using snapshot::Json;

Json records_json(const std::vector<store::Record>& records) {
  Json rows = Json::array();
  for (const auto& record : records) {
    Json row = Json::array();
    row.push(Json(record.type));
    row.push(Json(record.value));
    row.push(Json(record.ttl));
    rows.push(std::move(row));
  }
  return rows;
}

std::string parse_records(const Json& rows, std::vector<store::Record>& out) {
  if (!rows.is_array()) return "records list malformed";
  for (const auto& raw : rows.items()) {
    if (!raw.is_array() || raw.items().size() != 3 || !raw.items()[0].is_string() ||
        !raw.items()[1].is_string() || !raw.items()[2].is_u64()) {
      return "record entry malformed";
    }
    store::Record record;
    record.type = raw.items()[0].as_string();
    record.value = raw.items()[1].as_string();
    record.ttl = raw.items()[2].as_u64();
    out.push_back(std::move(record));
  }
  return "";
}

Json event_backend_config_json(const EventBackendConfig& config) {
  Json out = Json::object();
  Json transport = Json::object();
  transport["latency_min"] = Json(config.transport.latency_min);
  transport["latency_max"] = Json(config.transport.latency_max);
  transport["ack_timeout"] = Json(config.transport.ack_timeout);
  transport["loss_probability"] =
      Json(snapshot::bits_from_double(config.transport.loss_probability));
  out["transport"] = std::move(transport);
  Json client = Json::object();
  client["max_retries_per_hop"] = Json(static_cast<std::uint64_t>(config.client.max_retries_per_hop));
  client["backoff_base"] = Json(config.client.backoff_base);
  client["backoff_cap"] = Json(config.client.backoff_cap);
  client["jitter"] = Json(snapshot::bits_from_double(config.client.jitter));
  client["deadline"] = Json(config.client.deadline);
  client["max_hops"] = Json(static_cast<std::uint64_t>(config.client.max_hops));
  client["suspicion_ttl"] = Json(config.client.suspicion_ttl);
  client["seed"] = Json(config.client.seed);
  out["client"] = std::move(client);
  out["ticks_per_second"] = Json(config.ticks_per_second);
  out["suspicion_ttl"] = Json(config.suspicion_ttl);
  out["assume_ring_repaired"] =
      Json(static_cast<std::uint64_t>(config.assume_ring_repaired ? 1 : 0));
  out["seed"] = Json(config.seed);
  return out;
}

std::string parse_event_backend_config(const Json& state, EventBackendConfig& out) {
  const Json* transport = state.find("transport");
  const Json* client = state.find("client");
  if (transport == nullptr || client == nullptr) return "backend.config malformed";
  const auto u64_field = [](const Json& obj, const char* key, std::uint64_t& into) {
    const Json* field = obj.find(key);
    if (field == nullptr || !field->is_u64()) return false;
    into = field->as_u64();
    return true;
  };
  std::uint64_t loss_bits = 0;
  std::uint64_t jitter_bits = 0;
  std::uint64_t retries = 0;
  std::uint64_t max_hops = 0;
  std::uint64_t ring_repaired = 0;
  if (!u64_field(*transport, "latency_min", out.transport.latency_min) ||
      !u64_field(*transport, "latency_max", out.transport.latency_max) ||
      !u64_field(*transport, "ack_timeout", out.transport.ack_timeout) ||
      !u64_field(*transport, "loss_probability", loss_bits) ||
      !u64_field(*client, "max_retries_per_hop", retries) ||
      !u64_field(*client, "backoff_base", out.client.backoff_base) ||
      !u64_field(*client, "backoff_cap", out.client.backoff_cap) ||
      !u64_field(*client, "jitter", jitter_bits) ||
      !u64_field(*client, "deadline", out.client.deadline) ||
      !u64_field(*client, "max_hops", max_hops) ||
      !u64_field(*client, "suspicion_ttl", out.client.suspicion_ttl) ||
      !u64_field(*client, "seed", out.client.seed) ||
      !u64_field(state, "ticks_per_second", out.ticks_per_second) ||
      !u64_field(state, "suspicion_ttl", out.suspicion_ttl) ||
      !u64_field(state, "assume_ring_repaired", ring_repaired) ||
      !u64_field(state, "seed", out.seed)) {
    return "backend.config malformed";
  }
  out.transport.loss_probability = snapshot::double_from_bits(loss_bits);
  out.client.jitter = snapshot::double_from_bits(jitter_bits);
  out.client.max_retries_per_hop = static_cast<std::uint32_t>(retries);
  out.client.max_hops = static_cast<std::uint32_t>(max_hops);
  out.assume_ring_repaired = ring_repaired != 0;
  return "";
}

}  // namespace

snapshot::Json HoursSystem::config_json() const {
  Json config = Json::object();
  config["design"] = Json(static_cast<std::uint64_t>(config_.overlay.design));
  config["k"] = Json(static_cast<std::uint64_t>(config_.overlay.k));
  config["q"] = Json(static_cast<std::uint64_t>(config_.overlay.q));
  config["seed"] = Json(config_.overlay.seed);
  config["entrance"] = Json(static_cast<std::uint64_t>(config_.entrance));
  config["bootstrap_cache_size"] = Json(static_cast<std::uint64_t>(config_.bootstrap_cache_size));
  return config;
}

std::string HoursSystem::save_json(snapshot::Json& doc) const {
  doc = snapshot::make_document();
  Json system = Json::object();
  system["config"] = config_json();

  Json members = Json::array();  // rows [name, alive, [secondary parents...]]
  for (const auto& info : hierarchy_.members()) {
    Json row = Json::array();
    row.push(Json(info.name.to_string()));
    row.push(Json(static_cast<std::uint64_t>(info.alive ? 1 : 0)));
    Json secondaries = Json::array();
    for (const auto& parent : info.secondary_parents) secondaries.push(Json(parent.to_string()));
    row.push(std::move(secondaries));
    members.push(std::move(row));
  }
  system["members"] = std::move(members);
  system["root_alive"] = Json(static_cast<std::uint64_t>(hierarchy_.root_alive() ? 1 : 0));

  Json records = Json::array();  // rows [name, [[type, value, ttl]...]]
  for (const auto& [name, held] : records_.all()) {
    Json row = Json::array();
    row.push(Json(name.to_string()));
    row.push(records_json(held));
    records.push(std::move(row));
  }
  system["records"] = std::move(records);

  Json cache = Json::array();  // most recent first, as held
  for (const auto& name : bootstrap_cache_) cache.push(Json(name));
  system["bootstrap_cache"] = std::move(cache);

  Json rng = Json::array();
  for (const auto word : attack_rng_.state()) rng.push(Json(word));
  system["attack_rng"] = std::move(rng);
  Json attacks = Json::array();  // rows [target, [victims...]]
  for (const auto& [target, victims] : active_attacks_) {
    Json row = Json::array();
    row.push(Json(target));
    Json names = Json::array();
    for (const auto& victim : victims) names.push(Json(victim));
    row.push(std::move(names));
    attacks.push(std::move(row));
  }
  system["active_attacks"] = std::move(attacks);

  system["registry"] = snapshot::registry_to_json(registry_);
  system["op_clock"] = Json(op_clock_);
  system["next_qid"] = Json(next_qid_);

  Json backend = Json::object();
  backend["kind"] = Json(std::string(backend_->kind()));
  backend["now"] = Json(backend_->now());
  if (event_backend_ != nullptr) {
    backend["config"] = event_backend_config_json(event_backend_->config());
    Json plans = Json::array();
    for (const auto& plan : event_backend_->plans()) plans.push(Json(plan.describe()));
    backend["plans"] = std::move(plans);
  }
  system["backend"] = std::move(backend);

  doc["sections"]["system"] = std::move(system);
  return "";
}

std::string HoursSystem::save(const std::string& path) const {
  snapshot::Json doc;
  if (std::string error = save_json(doc); !error.empty()) return error;
  return snapshot::write_file(path, doc);
}

std::string HoursSystem::restore_json(const snapshot::Json& doc) {
  if (std::string error = snapshot::validate_document(doc); !error.empty()) return error;
  const Json* system = doc.find("sections")->find("system");
  if (system == nullptr) return "snapshot has no system section";

  const Json* config = system->find("config");
  if (config == nullptr) return "system.config missing";
  if (*config != config_json()) {
    return "system.config does not match this system's configuration";
  }
  if (hierarchy_.node_count() != 0 || records_.total_records() != 0) {
    return "restore requires a freshly constructed system";
  }

  const Json* members = system->find("members");
  const Json* root_alive = system->find("root_alive");
  const Json* records = system->find("records");
  const Json* cache = system->find("bootstrap_cache");
  const Json* rng = system->find("attack_rng");
  const Json* attacks = system->find("active_attacks");
  const Json* registry = system->find("registry");
  const Json* op_clock = system->find("op_clock");
  const Json* next_qid = system->find("next_qid");
  const Json* backend = system->find("backend");
  if (members == nullptr || !members->is_array() || root_alive == nullptr ||
      !root_alive->is_u64() || records == nullptr || !records->is_array() ||
      cache == nullptr || !cache->is_array() || rng == nullptr || !rng->is_array() ||
      rng->items().size() != 4 || attacks == nullptr || !attacks->is_array() ||
      registry == nullptr || op_clock == nullptr || !op_clock->is_u64() ||
      next_qid == nullptr || !next_qid->is_u64() || backend == nullptr) {
    return "system section malformed";
  }

  // Membership, two passes: primary admissions in saved (pre-order) order,
  // then mesh registrations — a secondary parent may appear later in
  // pre-order than the node registering it.
  struct SavedMember {
    naming::Name name;
    bool alive = true;
    std::vector<naming::Name> secondary_parents;
  };
  std::vector<SavedMember> saved;
  saved.reserve(members->items().size());
  for (const auto& raw : members->items()) {
    if (!raw.is_array() || raw.items().size() != 3 || !raw.items()[0].is_string() ||
        !raw.items()[1].is_u64() || !raw.items()[2].is_array()) {
      return "system.members entry malformed";
    }
    SavedMember member;
    auto parsed = naming::Name::parse(raw.items()[0].as_string());
    if (!parsed.ok()) return "system.members: " + parsed.error().message;
    member.name = parsed.value();
    member.alive = raw.items()[1].as_u64() != 0;
    for (const auto& sp : raw.items()[2].items()) {
      if (!sp.is_string()) return "system.members entry malformed";
      auto sp_parsed = naming::Name::parse(sp.as_string());
      if (!sp_parsed.ok()) return "system.members: " + sp_parsed.error().message;
      member.secondary_parents.push_back(sp_parsed.value());
    }
    saved.push_back(std::move(member));
  }
  for (const auto& member : saved) {
    if (auto admitted = hierarchy_.admit(member.name); !admitted.ok()) {
      return "system.members: " + admitted.error().message;
    }
  }
  for (const auto& member : saved) {
    for (const auto& parent : member.secondary_parents) {
      if (auto linked = hierarchy_.admit_secondary(member.name, parent); !linked.ok()) {
        return "system.members: " + linked.error().message;
      }
    }
  }
  for (const auto& member : saved) {
    if (!member.alive) {
      if (auto marked = hierarchy_.set_alive(member.name, false); !marked.ok()) {
        return "system.members: " + marked.error().message;
      }
    }
  }
  hierarchy_.set_root_alive(root_alive->as_u64() != 0);

  for (const auto& raw : records->items()) {
    if (!raw.is_array() || raw.items().size() != 2 || !raw.items()[0].is_string()) {
      return "system.records entry malformed";
    }
    auto parsed = naming::Name::parse(raw.items()[0].as_string());
    if (!parsed.ok()) return "system.records: " + parsed.error().message;
    std::vector<store::Record> held;
    if (std::string error = parse_records(raw.items()[1], held); !error.empty()) {
      return "system.records: " + error;
    }
    for (auto& record : held) records_.add(parsed.value(), std::move(record));
  }

  bootstrap_cache_.clear();
  for (const auto& name : cache->items()) {
    if (!name.is_string()) return "system.bootstrap_cache entry malformed";
    bootstrap_cache_.push_back(name.as_string());
  }

  for (const auto& word : rng->items()) {
    if (!word.is_u64()) return "system.attack_rng malformed";
  }
  rng::Xoshiro256::State words{};
  for (std::size_t i = 0; i < 4; ++i) words[i] = rng->items()[i].as_u64();
  attack_rng_.set_state(words);

  active_attacks_.clear();
  for (const auto& raw : attacks->items()) {
    if (!raw.is_array() || raw.items().size() != 2 || !raw.items()[0].is_string() ||
        !raw.items()[1].is_array()) {
      return "system.active_attacks entry malformed";
    }
    std::vector<std::string> victims;
    for (const auto& victim : raw.items()[1].items()) {
      if (!victim.is_string()) return "system.active_attacks entry malformed";
      victims.push_back(victim.as_string());
    }
    active_attacks_[raw.items()[0].as_string()] = std::move(victims);
  }

  if (std::string error = snapshot::registry_from_json(registry_, *registry); !error.empty()) {
    return "system.registry: " + error;
  }
  op_clock_ = op_clock->as_u64();
  next_qid_ = next_qid->as_u64();

  const Json* kind = backend->find("kind");
  const Json* now = backend->find("now");
  if (kind == nullptr || !kind->is_string() || now == nullptr || !now->is_u64()) {
    return "system.backend malformed";
  }
  backend_->on_membership_change();
  if (now->as_u64() < backend_->now()) return "system.backend clock runs backwards";
  backend_->advance(now->as_u64() - backend_->now());
  if (kind->as_string() == "event") {
    const Json* backend_config = backend->find("config");
    const Json* plans = backend->find("plans");
    if (backend_config == nullptr || plans == nullptr || !plans->is_array()) {
      return "system.backend malformed";
    }
    EventBackendConfig config_out;
    if (std::string error = parse_event_backend_config(*backend_config, config_out);
        !error.empty()) {
      return error;
    }
    use_event_backend(std::move(config_out));
    for (const auto& text : plans->items()) {
      if (!text.is_string()) return "system.backend.plans entry malformed";
      std::string parse_error;
      auto plan = sim::FaultPlan::parse(text.as_string(), &parse_error);
      if (!plan.has_value()) return "system.backend.plans: " + parse_error;
      if (auto scheduled = schedule_faults(std::move(*plan)); !scheduled.ok()) {
        return "system.backend.plans: " + scheduled.error().message;
      }
    }
  } else if (kind->as_string() != "graph") {
    return "system.backend.kind unknown: " + kind->as_string();
  }
  return "";
}

std::string HoursSystem::restore(const std::string& path) {
  snapshot::Json doc;
  if (std::string error = snapshot::read_file(path, doc); !error.empty()) return error;
  return restore_json(doc);
}

}  // namespace hours
