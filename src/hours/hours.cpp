#include "hours/hours.hpp"

#include <algorithm>
#include <utility>

namespace hours {

namespace {

util::Result<naming::Name> parse_name(std::string_view text) { return naming::Name::parse(text); }

QueryResult failed(util::Error::Code code) {
  QueryResult r;
  r.failure = code;
  return r;
}

}  // namespace

HoursSystem::HoursSystem(HoursConfig config)
    : config_(config), hierarchy_(config.overlay), router_(hierarchy_) {}

util::Result<naming::Name> HoursSystem::admit(std::string_view name) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  return hierarchy_.admit(parsed.value());
}

util::Result<naming::Name> HoursSystem::remove(std::string_view name) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  return hierarchy_.remove(parsed.value());
}

util::Result<naming::Name> HoursSystem::set_alive(std::string_view name, bool alive) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  if (parsed.value().is_root()) {
    hierarchy_.set_root_alive(alive);
  } else {
    auto result = hierarchy_.set_alive(parsed.value(), alive);
    if (!result.ok()) return result;
  }
  HOURS_TRACE_EMIT(trace_, {.at = ++op_clock_,
                            .type = alive ? trace::EventType::kFaultRevive
                                          : trace::EventType::kFaultKill,
                            .level = static_cast<std::int32_t>(parsed.value().depth())});
  return parsed.value();
}

util::Result<naming::Name> HoursSystem::strike(std::string_view target,
                                               attack::Strategy strategy,
                                               std::uint32_t sibling_count) {
  auto parsed = parse_name(target);
  if (!parsed.ok()) return parsed.error();
  if (parsed.value().is_root()) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "the root has no sibling overlay; use set_alive(\".\", false)"};
  }
  const std::string key{target};
  if (active_attacks_.count(key) != 0) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "an attack on this target is already active"};
  }
  auto path = hierarchy_.resolve(parsed.value());
  if (!path.ok()) return path.error();

  const auto parent_path = hierarchy::parent(path.value());
  auto& overlay = hierarchy_.overlay_of(parent_path);
  if (sibling_count >= overlay.size()) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "sibling_count must leave at least the target's slot"};
  }

  // Plan against ring indices, then pin the victims by *name* so the attack
  // survives membership-driven index shifts until it is lifted.
  const auto set =
      attack::plan(strategy, overlay.size(), path.value().back(), sibling_count, attack_rng_);
  std::vector<std::string> victims{std::string{target}};
  for (const auto index : set.victims) {
    auto name = hierarchy_.name_of(hierarchy::child(parent_path, index));
    if (name.ok()) victims.push_back(name.value().to_string());
  }
  for (const auto& victim : victims) {
    (void)hierarchy_.set_alive(naming::Name::parse(victim).value(), false);
    HOURS_TRACE_EMIT(trace_, {.at = ++op_clock_, .type = trace::EventType::kFaultKill,
                              .level = static_cast<std::int32_t>(path.value().size())});
  }
  attacks_launched_.inc();
  active_attacks_.emplace(key, std::move(victims));
  return parsed.value();
}

util::Result<naming::Name> HoursSystem::lift_attack(std::string_view target) {
  const auto it = active_attacks_.find(std::string{target});
  if (it == active_attacks_.end()) {
    return util::Error{util::Error::Code::kNotFound,
                       "no active attack on: " + std::string{target}};
  }
  for (const auto& victim : it->second) {
    (void)hierarchy_.set_alive(naming::Name::parse(victim).value(), true);
    HOURS_TRACE_EMIT(trace_, {.at = ++op_clock_, .type = trace::EventType::kFaultRevive});
  }
  attacks_lifted_.inc();
  active_attacks_.erase(it);
  return naming::Name::parse(target);
}

QueryResult HoursSystem::run_route(const hierarchy::NodePath& start,
                                   const hierarchy::NodePath& dest, bool record_path) {
  hierarchy::RouteOptions opts;
  opts.entrance = config_.entrance;
  opts.record_path = record_path;

  const hierarchy::RouteOutcome outcome = router_.route(dest, opts, {start});

  QueryResult result;
  result.delivered = outcome.delivered;
  result.failure = outcome.failure;
  result.hops = outcome.hops;
  result.hierarchical_hops = outcome.hierarchical_hops;
  result.overlay_hops = outcome.overlay_hops;
  result.inter_overlay_hops = outcome.inter_overlay_hops;
  result.backward_steps = outcome.backward_steps;
  if (record_path) {
    result.path.reserve(outcome.path.size());
    for (const auto& p : outcome.path) {
      auto name = hierarchy_.name_of(p);
      result.path.push_back(name.ok() ? name.value().to_string() : hierarchy::to_string(p));
    }
  }
  return result;
}

QueryResult HoursSystem::finish_query(std::uint64_t qid, QueryResult result) {
  if (result.delivered) {
    queries_delivered_.inc();
    delivered_hops_->add(result.hops);
  } else {
    queries_failed_.inc();
  }
  HOURS_TRACE_EMIT(trace_, {.at = ++op_clock_,
                            .type = result.delivered ? trace::EventType::kQueryDelivered
                                                     : trace::EventType::kQueryFailed,
                            .causal = qid,
                            .value = result.hops});
  return result;
}

QueryResult HoursSystem::query(std::string_view dest_name, bool record_path) {
  const std::uint64_t qid = next_qid_++;
  queries_submitted_.inc();
  auto parsed = parse_name(dest_name);
  if (!parsed.ok()) return finish_query(qid, failed(parsed.error().code));
  HOURS_TRACE_EMIT(trace_, {.at = ++op_clock_, .type = trace::EventType::kQuerySubmit,
                            .level = static_cast<std::int32_t>(parsed.value().depth()),
                            .causal = qid});
  const auto paths = hierarchy_.resolve_paths(parsed.value());
  if (paths.empty()) return finish_query(qid, failed(util::Error::Code::kNotFound));

  if (hierarchy_.root_alive()) {
    // Mesh nodes (Section 7) have several top-down paths; try the primary
    // first and fall through alternates on failure.
    QueryResult result;
    for (std::size_t attempt = 0; attempt < paths.size(); ++attempt) {
      result = run_route({}, paths[attempt], record_path);
      result.path_attempts = static_cast<std::uint32_t>(attempt + 1);
      if (result.delivered || result.failure == util::Error::Code::kDead) break;
    }
    if (result.delivered) {
      // Clients cache "the root node or a few frequently visited level-1
      // nodes" (Section 7): remember the level-1 zone as well as the
      // destination — the zone sits in the level-1 overlay, which lies on
      // every top-down path and therefore bootstraps any future query.
      cache_bootstrap(dest_name);
      if (parsed.value().depth() > 1) {
        cache_bootstrap(parsed.value().ancestor_at(1).to_string());
      }
    }
    return finish_query(qid, std::move(result));
  }

  // Root is down: bootstrap from cached nodes (Section 7) — any cached node
  // whose overlay lies on the destination's top-down path can start the
  // query.
  cache_bootstrap_queries_.inc();
  for (const auto& cached : bootstrap_cache_) {
    auto cached_name = parse_name(cached);
    if (!cached_name.ok()) continue;
    auto start = hierarchy_.resolve(cached_name.value());
    if (!start.ok() || start.value().empty()) continue;
    auto alive = hierarchy_.is_alive(cached_name.value());
    if (!alive.ok() || !alive.value()) continue;
    for (std::size_t attempt = 0; attempt < paths.size(); ++attempt) {
      QueryResult result = run_route(start.value(), paths[attempt], record_path);
      if (result.delivered) {
        result.path_attempts = static_cast<std::uint32_t>(attempt + 1);
        result.used_bootstrap_cache = true;
        cache_bootstrap(dest_name);
        return finish_query(qid, std::move(result));
      }
      if (result.failure == util::Error::Code::kDead) return finish_query(qid, std::move(result));
    }
  }
  return finish_query(qid, failed(util::Error::Code::kDead));  // no usable entry point
}

QueryResult HoursSystem::query_from(std::string_view start_name, std::string_view dest_name,
                                    bool record_path) {
  const std::uint64_t qid = next_qid_++;
  queries_submitted_.inc();
  auto start_parsed = parse_name(start_name);
  if (!start_parsed.ok()) return finish_query(qid, failed(start_parsed.error().code));
  auto dest_parsed = parse_name(dest_name);
  if (!dest_parsed.ok()) return finish_query(qid, failed(dest_parsed.error().code));
  HOURS_TRACE_EMIT(trace_, {.at = ++op_clock_, .type = trace::EventType::kQuerySubmit,
                            .level = static_cast<std::int32_t>(dest_parsed.value().depth()),
                            .causal = qid});

  auto start = hierarchy_.resolve(start_parsed.value());
  if (!start.ok()) return finish_query(qid, failed(start.error().code));
  auto dest = hierarchy_.resolve(dest_parsed.value());
  if (!dest.ok()) return finish_query(qid, failed(dest.error().code));

  return finish_query(qid, run_route(start.value(), dest.value(), record_path));
}

util::Result<naming::Name> HoursSystem::add_record(std::string_view name, store::Record record) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  auto path = hierarchy_.resolve(parsed.value());
  if (!path.ok()) return path.error();  // records live only at admitted nodes
  records_.add(parsed.value(), std::move(record));
  return parsed.value();
}

HoursSystem::LookupResult HoursSystem::lookup(std::string_view name) {
  LookupResult result;
  result.query = query(name);
  if (result.query.delivered) {
    auto parsed = parse_name(name);
    if (parsed.ok()) result.records = records_.records_at(parsed.value());
  }
  return result;
}

void HoursSystem::cache_bootstrap(std::string_view name) {
  const std::string entry{name};
  const auto it = std::find(bootstrap_cache_.begin(), bootstrap_cache_.end(), entry);
  if (it != bootstrap_cache_.end()) bootstrap_cache_.erase(it);
  bootstrap_cache_.push_front(entry);
  while (bootstrap_cache_.size() > config_.bootstrap_cache_size) bootstrap_cache_.pop_back();
}

}  // namespace hours
