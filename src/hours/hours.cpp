#include "hours/hours.hpp"

#include <algorithm>
#include <utility>

#include "hours/graph_backend.hpp"

namespace hours {

namespace {

util::Result<naming::Name> parse_name(std::string_view text) { return naming::Name::parse(text); }

QueryResult failed(util::Error::Code code) {
  QueryResult r;
  r.failure = code;
  return r;
}

}  // namespace

HoursSystem::HoursSystem(HoursConfig config) : config_(config), hierarchy_(config.overlay) {
  backend_ = std::make_unique<GraphBackend>(*this);
}

EventBackend& HoursSystem::use_event_backend(EventBackendConfig config) {
  const std::uint64_t clock = backend_->now();  // read before the swap
  auto backend = std::make_unique<EventBackend>(*this, std::move(config), clock);
  event_backend_ = backend.get();
  backend_ = std::move(backend);
  backend_->set_tracer(trace_);
  return *event_backend_;
}

void HoursSystem::use_graph_backend() {
  const std::uint64_t clock = backend_->now();
  event_backend_ = nullptr;
  backend_ = std::make_unique<GraphBackend>(*this, clock);
  backend_->set_tracer(trace_);
}

util::Result<naming::Name> HoursSystem::admit(std::string_view name) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  auto admitted = hierarchy_.admit(parsed.value());
  if (admitted.ok()) backend_->on_membership_change();
  return admitted;
}

util::Result<naming::Name> HoursSystem::remove(std::string_view name) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  auto removed = hierarchy_.remove(parsed.value());
  if (removed.ok()) backend_->on_membership_change();
  return removed;
}

util::Result<naming::Name> HoursSystem::set_alive(std::string_view name, bool alive) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  if (parsed.value().is_root()) {
    hierarchy_.set_root_alive(alive);
  } else {
    auto result = hierarchy_.set_alive(parsed.value(), alive);
    if (!result.ok()) return result;
  }
  backend_->on_set_alive(parsed.value(), alive);
  HOURS_TRACE_EMIT(trace_, {.at = stamp(),
                            .type = alive ? trace::EventType::kFaultRevive
                                          : trace::EventType::kFaultKill,
                            .level = static_cast<std::int32_t>(parsed.value().depth())});
  return parsed.value();
}

util::Result<naming::Name> HoursSystem::strike(std::string_view target,
                                               attack::Strategy strategy,
                                               std::uint32_t sibling_count) {
  auto parsed = parse_name(target);
  if (!parsed.ok()) return parsed.error();
  if (parsed.value().is_root()) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "the root has no sibling overlay; use set_alive(\".\", false)"};
  }
  const std::string key{target};
  if (active_attacks_.count(key) != 0) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "an attack on this target is already active"};
  }
  auto path = hierarchy_.resolve(parsed.value());
  if (!path.ok()) return path.error();

  const auto parent_path = hierarchy::parent(path.value());
  auto& overlay = hierarchy_.overlay_of(parent_path);
  if (sibling_count >= overlay.size()) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "sibling_count must leave at least the target's slot"};
  }

  // Plan against ring indices, then pin the victims by *name* so the attack
  // survives membership-driven index shifts until it is lifted.
  const auto set =
      attack::plan(strategy, overlay.size(), path.value().back(), sibling_count, attack_rng_);
  std::vector<std::string> victims{std::string{target}};
  for (const auto index : set.victims) {
    auto name = hierarchy_.name_of(hierarchy::child(parent_path, index));
    if (name.ok()) victims.push_back(name.value().to_string());
  }
  for (const auto& victim : victims) {
    const auto victim_name = naming::Name::parse(victim).value();
    (void)hierarchy_.set_alive(victim_name, false);
    backend_->on_set_alive(victim_name, false);
    HOURS_TRACE_EMIT(trace_, {.at = stamp(), .type = trace::EventType::kFaultKill,
                              .level = static_cast<std::int32_t>(path.value().size())});
  }
  attacks_launched_.inc();
  active_attacks_.emplace(key, std::move(victims));
  return parsed.value();
}

util::Result<naming::Name> HoursSystem::lift_attack(std::string_view target) {
  const auto it = active_attacks_.find(std::string{target});
  if (it == active_attacks_.end()) {
    return util::Error{util::Error::Code::kNotFound,
                       "no active attack on: " + std::string{target}};
  }
  for (const auto& victim : it->second) {
    const auto victim_name = naming::Name::parse(victim).value();
    (void)hierarchy_.set_alive(victim_name, true);
    backend_->on_set_alive(victim_name, true);
    HOURS_TRACE_EMIT(trace_, {.at = stamp(), .type = trace::EventType::kFaultRevive});
  }
  attacks_lifted_.inc();
  active_attacks_.erase(it);
  return naming::Name::parse(target);
}

QueryResult HoursSystem::finish_query(std::uint64_t qid, QueryResult result) {
  if (result.delivered) {
    queries_delivered_.inc();
    delivered_hops_->add(result.hops);
  } else {
    queries_failed_.inc();
  }
  HOURS_TRACE_EMIT(trace_, {.at = stamp(),
                            .type = result.delivered ? trace::EventType::kQueryDelivered
                                                     : trace::EventType::kQueryFailed,
                            .causal = qid,
                            .value = result.hops});
  return result;
}

QueryResult HoursSystem::query(std::string_view dest_name, bool record_path) {
  const std::uint64_t qid = next_qid_++;
  queries_submitted_.inc();
  auto parsed = parse_name(dest_name);
  if (!parsed.ok()) return finish_query(qid, failed(parsed.error().code));
  HOURS_TRACE_EMIT(trace_, {.at = stamp(), .type = trace::EventType::kQuerySubmit,
                            .level = static_cast<std::int32_t>(parsed.value().depth()),
                            .causal = qid});
  return finish_query(qid, backend_->execute(parsed.value(), record_path));
}

QueryResult HoursSystem::query_from(std::string_view start_name, std::string_view dest_name,
                                    bool record_path) {
  const std::uint64_t qid = next_qid_++;
  queries_submitted_.inc();
  auto start_parsed = parse_name(start_name);
  if (!start_parsed.ok()) return finish_query(qid, failed(start_parsed.error().code));
  auto dest_parsed = parse_name(dest_name);
  if (!dest_parsed.ok()) return finish_query(qid, failed(dest_parsed.error().code));
  HOURS_TRACE_EMIT(trace_, {.at = stamp(), .type = trace::EventType::kQuerySubmit,
                            .level = static_cast<std::int32_t>(dest_parsed.value().depth()),
                            .causal = qid});
  return finish_query(qid, backend_->execute_from(start_parsed.value(), dest_parsed.value(),
                                                  record_path));
}

util::Result<naming::Name> HoursSystem::add_record(std::string_view name, store::Record record) {
  auto parsed = parse_name(name);
  if (!parsed.ok()) return parsed.error();
  auto path = hierarchy_.resolve(parsed.value());
  if (!path.ok()) return path.error();  // records live only at admitted nodes
  records_.add(parsed.value(), std::move(record));
  return parsed.value();
}

HoursSystem::LookupResult HoursSystem::lookup(std::string_view name) {
  LookupResult result;
  result.query = query(name);
  if (result.query.delivered) {
    auto parsed = parse_name(name);
    if (parsed.ok()) result.records = records_.records_at(parsed.value());
  }
  return result;
}

std::vector<HoursSystem::LookupResult> HoursSystem::lookup_batch(
    const std::vector<std::string>& names) {
  std::vector<LookupResult> results;
  results.reserve(names.size());
  for (const auto& name : names) results.push_back(lookup(name));
  return results;
}

void HoursSystem::cache_bootstrap(std::string_view name) {
  const std::string entry{name};
  const auto it = std::find(bootstrap_cache_.begin(), bootstrap_cache_.end(), entry);
  if (it != bootstrap_cache_.end()) bootstrap_cache_.erase(it);
  bootstrap_cache_.push_front(entry);
  while (bootstrap_cache_.size() > config_.bootstrap_cache_size) bootstrap_cache_.pop_back();
}

}  // namespace hours
