#include "hours/event_backend.hpp"

#include <string>
#include <utility>

#include "hours/hours.hpp"

namespace hours {

namespace {

QueryResult failed(util::Error::Code code) {
  QueryResult r;
  r.failure = code;
  return r;
}

}  // namespace

EventBackend::EventBackend(HoursSystem& system, EventBackendConfig config,
                           std::uint64_t clock_offset_seconds)
    : system_(system),
      config_(config),
      offset_seconds_(clock_offset_seconds),
      cache_bootstrap_queries_(system.registry().counter("facade.cache_bootstrap_queries")) {}

std::uint64_t EventBackend::now() const noexcept {
  const std::uint64_t sim_seconds =
      sim_ ? sim_->simulator().now() / config_.ticks_per_second : 0;
  return offset_seconds_ + sim_seconds;
}

void EventBackend::advance(std::uint64_t seconds) {
  ensure_built();
  // Simulator::run clamps now() to the deadline even when the queue drains
  // early, so wall-clock advancement never depends on pending events.
  sim_->simulator().run(seconds * config_.ticks_per_second);
}

void EventBackend::ensure_built() {
  if (sim_) return;
  auto& hierarchy = system_.hierarchy();

  // Flat BFS image in exactly the order HierarchySimulation assigns ids.
  // No NodePath or name is materialized here — with lazy overlay tables on
  // both sides, building a million-node mirror costs O(N) integers; names
  // resolve on demand through resolve_id().
  auto snapshot = hierarchy.topology_snapshot();
  sim::TreeTopology topology;
  topology.child_counts = std::move(snapshot.child_counts);

  sim::HierarchySimConfig sim_config;
  sim_config.params = system_.config().overlay;
  sim_config.transport = config_.transport;
  sim_config.seed = config_.seed;
  sim_config.suspicion_ttl = config_.suspicion_ttl;
  sim_config.liveness = config_.liveness;
  sim_config.assume_ring_repaired = config_.assume_ring_repaired;
  sim_ = std::make_unique<sim::HierarchySimulation>(sim_config, topology);

  id_cache_.clear();

  // Mirror the facade's oracle liveness as the simulation's initial state;
  // from here on, downtime inside the simulation is learned from silence.
  for (const std::uint32_t id : snapshot.dead) sim_->kill_id(id);

  client_ = std::make_unique<sim::QueryClient>(sim::make_query_network(*sim_), config_.client);

  injectors_.clear();
  for (const auto& plan : plans_) {
    injectors_.push_back(
        std::make_unique<sim::FaultInjector>(sim::make_fault_target(*sim_), plan));
    injectors_.back()->set_tracer(trace_);
    injectors_.back()->arm();
  }

  sim_->set_tracer(trace_);
  client_->set_tracer(trace_);
}

void EventBackend::settle(std::uint64_t qid) {
  while (client_->outcome(qid).status == sim::QueryStatus::kPending) {
    if (sim_->simulator().run(/*limit=*/0, /*max_events=*/1) == 0) break;
  }
}

QueryResult EventBackend::run_client_query(std::uint32_t start_id, std::uint32_t dest_id,
                                           const naming::Name& dest, bool from_cache) {
  const std::uint64_t qid = client_->submit(start_id, dest_id);
  settle(qid);
  const sim::ClientQueryOutcome& out = client_->outcome(qid);

  QueryResult result;
  result.hops = out.hops;
  result.retransmissions = out.retransmissions;
  result.failovers = out.failovers;
  result.latency_ticks = out.latency();
  result.used_bootstrap_cache = from_cache;
  switch (out.status) {
    case sim::QueryStatus::kDelivered:
      result.delivered = true;
      system_.cache_bootstrap(dest.to_string());
      if (!from_cache && dest.depth() > 1) {
        system_.cache_bootstrap(dest.ancestor_at(1).to_string());
      }
      break;
    case sim::QueryStatus::kDeadlineExceeded:
      result.failure = util::Error::Code::kUnreachable;
      break;
    case sim::QueryStatus::kNoRoute:
      result.failure = util::Error::Code::kDead;
      break;
    case sim::QueryStatus::kPending:  // queue drained without settling
      result.failure = util::Error::Code::kInternal;
      break;
  }
  return result;
}

std::int64_t EventBackend::resolve_id(const naming::Name& name) {
  ensure_built();
  std::string key = name.to_string();
  if (const auto it = id_cache_.find(key); it != id_cache_.end()) return it->second;
  std::int64_t id = -1;
  // The primary path's id; a mesh alias node also exists under secondary
  // parents with other ids, but liveness mirroring and query addressing use
  // the primary membership (docs/PROTOCOL.md §7).
  if (auto path = system_.hierarchy().resolve(name); path.ok()) {
    id = sim_->find_id(path.value());
  }
  id_cache_.emplace(std::move(key), id);
  return id;
}

QueryResult EventBackend::execute(const naming::Name& dest, bool /*record_path*/) {
  ensure_built();
  const std::int64_t dest_id = resolve_id(dest);
  if (dest_id < 0) return failed(util::Error::Code::kNotFound);

  // Entry-point selection: the client checks whether its entry answers at
  // all (one RTT) before handing over custody — the root first, then the
  // bootstrap cache (Section 7) when the root is down. Forwarding liveness
  // beyond the entry point stays silence-inferred.
  if (sim_->alive_id(0)) {
    return run_client_query(/*start_id=*/0, static_cast<std::uint32_t>(dest_id), dest,
                            /*from_cache=*/false);
  }

  cache_bootstrap_queries_.inc();
  for (const auto& cached : system_.bootstrap_cache()) {
    const auto parsed = naming::Name::parse(cached);
    if (!parsed.ok()) continue;
    const std::int64_t cached_id = resolve_id(parsed.value());
    if (cached_id < 0) continue;
    if (!sim_->alive_id(static_cast<std::uint32_t>(cached_id))) continue;
    return run_client_query(static_cast<std::uint32_t>(cached_id),
                            static_cast<std::uint32_t>(dest_id), dest, /*from_cache=*/true);
  }
  return failed(util::Error::Code::kDead);  // no usable entry point
}

QueryResult EventBackend::execute_from(const naming::Name& start, const naming::Name& dest,
                                       bool /*record_path*/) {
  ensure_built();
  const std::int64_t start_id = resolve_id(start);
  if (start_id < 0) return failed(util::Error::Code::kNotFound);
  const std::int64_t dest_id = resolve_id(dest);
  if (dest_id < 0) return failed(util::Error::Code::kNotFound);
  if (!sim_->alive_id(static_cast<std::uint32_t>(start_id))) {
    return failed(util::Error::Code::kDead);
  }
  return run_client_query(static_cast<std::uint32_t>(start_id),
                          static_cast<std::uint32_t>(dest_id), dest, /*from_cache=*/false);
}

void EventBackend::on_set_alive(const naming::Name& name, bool alive) {
  // Before the snapshot exists there is nothing to mirror: ensure_built
  // reads the hierarchy's liveness when it materializes.
  if (!sim_) return;
  const std::int64_t id = resolve_id(name);
  if (id < 0) return;
  if (alive) {
    sim_->revive_id(static_cast<std::uint32_t>(id));
  } else {
    sim_->kill_id(static_cast<std::uint32_t>(id));
  }
}

void EventBackend::on_membership_change() {
  if (!sim_) return;
  // The id layout is stale; drop the snapshot and keep the clock monotonic.
  // Stored fault plans re-arm relative to the rebuilt simulator's t=0.
  offset_seconds_ = now();
  client_.reset();
  injectors_.clear();
  sim_.reset();
  id_cache_.clear();
}

util::Result<std::size_t> EventBackend::schedule_faults(sim::FaultPlan plan) {
  plans_.push_back(plan);
  if (sim_) {
    injectors_.push_back(
        std::make_unique<sim::FaultInjector>(sim::make_fault_target(*sim_), std::move(plan)));
    injectors_.back()->set_tracer(trace_);
    injectors_.back()->arm();
  }
  return plans_.size();
}

std::uint64_t EventBackend::trace_stamp(std::uint64_t& op_clock) const {
  // Once the simulator exists, facade events share its timeline so they
  // interleave correctly with protocol-level events in one trace.
  if (sim_) return sim_->simulator().now();
  return ++op_clock;
}

void EventBackend::set_tracer(trace::Tracer* tracer) {
  trace_ = tracer;
  if (sim_) sim_->set_tracer(tracer);
  if (client_) client_->set_tracer(tracer);
  for (auto& injector : injectors_) injector->set_tracer(tracer);
}

std::optional<std::uint32_t> EventBackend::node_id(std::string_view name) {
  ensure_built();
  const auto parsed = naming::Name::parse(name);
  if (!parsed.ok()) return std::nullopt;
  const std::int64_t id = resolve_id(parsed.value());
  if (id < 0) return std::nullopt;
  return static_cast<std::uint32_t>(id);
}

sim::FaultInjectorStats EventBackend::fault_stats() const {
  sim::FaultInjectorStats total;
  for (const auto& injector : injectors_) {
    const auto& s = injector->stats();
    total.kills += s.kills;
    total.revivals += s.revivals;
    total.link_cuts += s.link_cuts;
    total.link_heals += s.link_heals;
    total.loss_changes += s.loss_changes;
    total.behavior_changes += s.behavior_changes;
  }
  return total;
}

}  // namespace hours
