#include "hours/event_backend.hpp"

#include <string>
#include <utility>

#include "hours/hours.hpp"

namespace hours {

namespace {

QueryResult failed(util::Error::Code code) {
  QueryResult r;
  r.failure = code;
  return r;
}

}  // namespace

EventBackend::EventBackend(HoursSystem& system, EventBackendConfig config,
                           std::uint64_t clock_offset_seconds)
    : system_(system),
      config_(config),
      offset_seconds_(clock_offset_seconds),
      cache_bootstrap_queries_(system.registry().counter("facade.cache_bootstrap_queries")) {}

std::uint64_t EventBackend::now() const noexcept {
  const std::uint64_t sim_seconds =
      sim_ ? sim_->simulator().now() / config_.ticks_per_second : 0;
  return offset_seconds_ + sim_seconds;
}

void EventBackend::advance(std::uint64_t seconds) {
  ensure_built();
  // Simulator::run clamps now() to the deadline even when the queue drains
  // early, so wall-clock advancement never depends on pending events.
  sim_->simulator().run(seconds * config_.ticks_per_second);
}

void EventBackend::ensure_built() {
  if (sim_) return;
  auto& hierarchy = system_.hierarchy();

  // BFS in exactly the order HierarchySimulation assigns ids: node i's
  // children are appended once every node j <= i has placed its own, so
  // paths[id] is the NodePath of simulator node id.
  sim::TreeTopology topology;
  std::vector<hierarchy::NodePath> paths{hierarchy::NodePath{}};
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::uint32_t count = hierarchy.child_count(paths[i]);
    topology.child_counts.push_back(count);
    for (std::uint32_t j = 0; j < count; ++j) {
      paths.push_back(hierarchy::child(paths[i], j));
    }
  }

  sim::HierarchySimConfig sim_config;
  sim_config.params = system_.config().overlay;
  sim_config.transport = config_.transport;
  sim_config.seed = config_.seed;
  sim_config.suspicion_ttl = config_.suspicion_ttl;
  sim_config.assume_ring_repaired = config_.assume_ring_repaired;
  sim_ = std::make_unique<sim::HierarchySimulation>(sim_config, topology);

  name_by_id_.clear();
  id_by_name_.clear();
  name_by_id_.reserve(paths.size());
  for (std::uint32_t id = 0; id < paths.size(); ++id) {
    std::string name;
    if (id == 0) {
      name = naming::Name{}.to_string();  // "."
    } else if (auto n = hierarchy.name_of(paths[id]); n.ok()) {
      name = n.value().to_string();
    }
    name_by_id_.push_back(name);
    // emplace keeps the first (primary-path) id when a mesh alias maps the
    // same name twice; secondary parents are otherwise unsupported here.
    if (!name.empty()) id_by_name_.emplace(name, id);
  }

  // Mirror the facade's oracle liveness as the simulation's initial state;
  // from here on, downtime inside the simulation is learned from silence.
  if (!hierarchy.root_alive()) sim_->kill(hierarchy::NodePath{});
  for (std::uint32_t id = 1; id < paths.size(); ++id) {
    if (name_by_id_[id].empty()) continue;
    auto parsed = naming::Name::parse(name_by_id_[id]);
    if (!parsed.ok()) continue;
    auto alive = hierarchy.is_alive(parsed.value());
    if (alive.ok() && !alive.value()) sim_->kill(paths[id]);
  }

  client_ = std::make_unique<sim::QueryClient>(sim::make_query_network(*sim_), config_.client);

  injectors_.clear();
  for (const auto& plan : plans_) {
    injectors_.push_back(
        std::make_unique<sim::FaultInjector>(sim::make_fault_target(*sim_), plan));
    injectors_.back()->set_tracer(trace_);
    injectors_.back()->arm();
  }

  sim_->set_tracer(trace_);
  client_->set_tracer(trace_);
}

void EventBackend::settle(std::uint64_t qid) {
  while (client_->outcome(qid).status == sim::QueryStatus::kPending) {
    if (sim_->simulator().run(/*limit=*/0, /*max_events=*/1) == 0) break;
  }
}

QueryResult EventBackend::run_client_query(std::uint32_t start_id, std::uint32_t dest_id,
                                           const naming::Name& dest, bool from_cache) {
  const std::uint64_t qid = client_->submit(start_id, dest_id);
  settle(qid);
  const sim::ClientQueryOutcome& out = client_->outcome(qid);

  QueryResult result;
  result.hops = out.hops;
  result.retransmissions = out.retransmissions;
  result.failovers = out.failovers;
  result.latency_ticks = out.latency();
  result.used_bootstrap_cache = from_cache;
  switch (out.status) {
    case sim::QueryStatus::kDelivered:
      result.delivered = true;
      system_.cache_bootstrap(dest.to_string());
      if (!from_cache && dest.depth() > 1) {
        system_.cache_bootstrap(dest.ancestor_at(1).to_string());
      }
      break;
    case sim::QueryStatus::kDeadlineExceeded:
      result.failure = util::Error::Code::kUnreachable;
      break;
    case sim::QueryStatus::kNoRoute:
      result.failure = util::Error::Code::kDead;
      break;
    case sim::QueryStatus::kPending:  // queue drained without settling
      result.failure = util::Error::Code::kInternal;
      break;
  }
  return result;
}

QueryResult EventBackend::execute(const naming::Name& dest, bool /*record_path*/) {
  ensure_built();
  const auto it = id_by_name_.find(dest.to_string());
  if (it == id_by_name_.end()) return failed(util::Error::Code::kNotFound);
  const std::uint32_t dest_id = it->second;

  // Entry-point selection: the client checks whether its entry answers at
  // all (one RTT) before handing over custody — the root first, then the
  // bootstrap cache (Section 7) when the root is down. Forwarding liveness
  // beyond the entry point stays silence-inferred.
  if (sim_->alive(hierarchy::NodePath{})) {
    return run_client_query(/*start_id=*/0, dest_id, dest, /*from_cache=*/false);
  }

  cache_bootstrap_queries_.inc();
  for (const auto& cached : system_.bootstrap_cache()) {
    const auto cached_it = id_by_name_.find(cached);
    if (cached_it == id_by_name_.end()) continue;
    if (!sim_->alive(sim_->path_of(cached_it->second))) continue;
    return run_client_query(cached_it->second, dest_id, dest, /*from_cache=*/true);
  }
  return failed(util::Error::Code::kDead);  // no usable entry point
}

QueryResult EventBackend::execute_from(const naming::Name& start, const naming::Name& dest,
                                       bool /*record_path*/) {
  ensure_built();
  const auto start_it = id_by_name_.find(start.to_string());
  if (start_it == id_by_name_.end()) return failed(util::Error::Code::kNotFound);
  const auto dest_it = id_by_name_.find(dest.to_string());
  if (dest_it == id_by_name_.end()) return failed(util::Error::Code::kNotFound);
  if (!sim_->alive(sim_->path_of(start_it->second))) {
    return failed(util::Error::Code::kDead);
  }
  return run_client_query(start_it->second, dest_it->second, dest, /*from_cache=*/false);
}

void EventBackend::on_set_alive(const naming::Name& name, bool alive) {
  // Before the snapshot exists there is nothing to mirror: ensure_built
  // reads the hierarchy's liveness when it materializes.
  if (!sim_) return;
  const auto it = id_by_name_.find(name.to_string());
  if (it == id_by_name_.end()) return;
  const auto& path = sim_->path_of(it->second);
  if (alive) {
    sim_->revive(path);
  } else {
    sim_->kill(path);
  }
}

void EventBackend::on_membership_change() {
  if (!sim_) return;
  // The id layout is stale; drop the snapshot and keep the clock monotonic.
  // Stored fault plans re-arm relative to the rebuilt simulator's t=0.
  offset_seconds_ = now();
  client_.reset();
  injectors_.clear();
  sim_.reset();
}

util::Result<std::size_t> EventBackend::schedule_faults(sim::FaultPlan plan) {
  plans_.push_back(plan);
  if (sim_) {
    injectors_.push_back(
        std::make_unique<sim::FaultInjector>(sim::make_fault_target(*sim_), std::move(plan)));
    injectors_.back()->set_tracer(trace_);
    injectors_.back()->arm();
  }
  return plans_.size();
}

std::uint64_t EventBackend::trace_stamp(std::uint64_t& op_clock) const {
  // Once the simulator exists, facade events share its timeline so they
  // interleave correctly with protocol-level events in one trace.
  if (sim_) return sim_->simulator().now();
  return ++op_clock;
}

void EventBackend::set_tracer(trace::Tracer* tracer) {
  trace_ = tracer;
  if (sim_) sim_->set_tracer(tracer);
  if (client_) client_->set_tracer(tracer);
  for (auto& injector : injectors_) injector->set_tracer(tracer);
}

std::optional<std::uint32_t> EventBackend::node_id(std::string_view name) {
  ensure_built();
  const auto it = id_by_name_.find(name);
  if (it == id_by_name_.end()) return std::nullopt;
  return it->second;
}

sim::FaultInjectorStats EventBackend::fault_stats() const {
  sim::FaultInjectorStats total;
  for (const auto& injector : injectors_) {
    const auto& s = injector->stats();
    total.kills += s.kills;
    total.revivals += s.revivals;
    total.link_cuts += s.link_cuts;
    total.link_heals += s.link_heals;
    total.loss_changes += s.loss_changes;
    total.behavior_changes += s.behavior_changes;
  }
  return total;
}

}  // namespace hours
