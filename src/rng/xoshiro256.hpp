// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality 64-bit generator.
// Satisfies std::uniform_random_bit_generator, so it composes with <random>
// distributions, but the simulators mostly use the uniform helpers below for
// speed and cross-platform reproducibility (std distributions are not
// bit-reproducible across standard libraries).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "rng/splitmix64.hpp"
#include "util/contracts.hpp"

namespace hours::rng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Expand one word into four with SplitMix64, per the authors' guidance.
    std::uint64_t sm = seed;
    for (auto& limb : state_) limb = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for simulation at these bounds; exact rejection not needed).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    HOURS_EXPECTS(bound > 0);
    // 128-bit multiply-high.
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// The full generator state, for exact serialization: a stream restored
  /// with set_state() continues the original sequence bit-for-bit.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] State state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const State& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace hours::rng
