// SplitMix64 — the standard seeding/stream-splitting mixer (Steele et al.).
// Used to derive independent, reproducible seeds for per-node generators.
#pragma once

#include <cstdint>

namespace hours::rng {

/// Advances `state` and returns the next SplitMix64 output.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two words into one — used for seed derivation
/// (e.g. overlay seed x node index -> per-node table seed).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = a ^ (0x9E3779B97F4A7C15ULL + (b << 6) + (b >> 2));
  std::uint64_t first = splitmix64_next(state);
  return first ^ splitmix64_next(state);
}

}  // namespace hours::rng
