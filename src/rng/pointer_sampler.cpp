#include "rng/pointer_sampler.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace hours::rng {

std::vector<std::uint32_t> sample_pointer_distances_naive(std::uint32_t n, std::uint32_t k,
                                                          Xoshiro256& rng) {
  HOURS_EXPECTS(n >= 1 && k >= 1);
  std::vector<std::uint32_t> out;
  for (std::uint32_t d = 1; d < n; ++d) {
    if (d <= k) {
      out.push_back(d);  // probability min(1, k/d) = 1
    } else if (rng.bernoulli(static_cast<double>(k) / static_cast<double>(d))) {
      out.push_back(d);
    }
  }
  return out;
}

namespace {

/// P(no pointer at any distance in (d, e]) for d >= k:
/// Prod_{i=0}^{k-1} (d - i) / (e - i).
double survival(std::uint32_t d, std::uint32_t e, std::uint32_t k) {
  double s = 1.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    s *= static_cast<double>(d - i) / static_cast<double>(e - i);
  }
  return s;
}

}  // namespace

std::vector<std::uint32_t> sample_pointer_distances(std::uint32_t n, std::uint32_t k,
                                                    Xoshiro256& rng) {
  HOURS_EXPECTS(n >= 1 && k >= 1);
  std::vector<std::uint32_t> out;
  const std::uint32_t certain = std::min(k, n - 1);
  out.reserve(certain + 8);
  for (std::uint32_t d = 1; d <= certain; ++d) out.push_back(d);
  if (n <= k + 1) return out;

  std::uint32_t d = k;  // all distances <= d are decided
  while (d < n - 1) {
    const double u = rng.uniform();
    // Smallest e in (d, n-1] with survival(d, e) <= u is the next success;
    // survival is strictly decreasing in e.
    if (survival(d, n - 1, k) > u) break;  // no further successes
    std::uint32_t lo = d + 1;
    std::uint32_t hi = n - 1;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (survival(d, mid, k) <= u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    out.push_back(lo);
    d = lo;
  }
  return out;
}

std::vector<std::uint32_t> sample_distinct(std::uint32_t n, std::uint32_t q, Xoshiro256& rng) {
  if (q >= n) {
    std::vector<std::uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0U);
    return all;
  }
  // Floyd's algorithm: q draws, no rejection loop degeneration.
  std::vector<std::uint32_t> out;
  out.reserve(q);
  for (std::uint32_t j = n - q; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(rng.below(j + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace hours::rng
