// Samplers for Algorithm 1's pointer distribution.
//
// A node keeps a sibling pointer at clockwise index distance d with
// probability min(1, k/d) (k = 1 reproduces the base design's 1/d). The
// naive generator draws one Bernoulli per distance — O(N) per node, which is
// hopeless for the 2,000,000-node overlay of Figure 7. JumpSampler draws the
// *gaps between successes* exactly, in O(k log N) expected time per table,
// using the telescoping identity
//
//   P(no success in (d, e]) = Prod_{j=d+1}^{e} (1 - k/j)
//                           = Prod_{i=0}^{k-1} (d - i) / (e - i)        (d >= k)
//
// which is monotone in e and therefore invertible by binary search. The two
// samplers are distribution-identical (chi-squared-tested in
// tests/rng_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "rng/xoshiro256.hpp"

namespace hours::rng {

/// Reference O(N) sampler: one Bernoulli(min(1, k/d)) per distance.
/// Returns the sorted distances d in [1, n-1] that received a pointer.
[[nodiscard]] std::vector<std::uint32_t> sample_pointer_distances_naive(std::uint32_t n,
                                                                        std::uint32_t k,
                                                                        Xoshiro256& rng);

/// Exact O(k log N)-per-table jump sampler; same distribution as the naive
/// sampler, suitable for multi-million-node overlays.
[[nodiscard]] std::vector<std::uint32_t> sample_pointer_distances(std::uint32_t n,
                                                                  std::uint32_t k,
                                                                  Xoshiro256& rng);

/// Samples `q` distinct uniform values from [0, n) (q << n expected).
/// If q >= n, returns all of [0, n).
[[nodiscard]] std::vector<std::uint32_t> sample_distinct(std::uint32_t n, std::uint32_t q,
                                                         Xoshiro256& rng);

}  // namespace hours::rng
