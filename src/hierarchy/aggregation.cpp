#include "hierarchy/aggregation.hpp"

#include <algorithm>
#include <numeric>

#include "rng/splitmix64.hpp"
#include "util/contracts.hpp"

namespace hours::hierarchy {

namespace {

/// Deterministic, publicly computable ring placement for member (p, c):
/// the aggregate analogue of SHA-1(name) ordering in Section 3.2.
std::uint64_t placement_hash(std::uint64_t seed, std::uint32_t parent, std::uint32_t child) {
  return rng::mix64(rng::mix64(seed, parent), 0x636F7573696EULL + child);
}

overlay::Overlay build_overlay(std::uint32_t size, std::uint32_t grandchildren,
                               const overlay::OverlayParams& params) {
  return overlay::Overlay{
      size, params, overlay::TableStorage::kEager,
      grandchildren > 0
          ? overlay::ChildCountFn{[grandchildren](ids::RingIndex) { return grandchildren; }}
          : overlay::ChildCountFn{}};
}

}  // namespace

CousinOverlay::CousinOverlay(std::uint32_t parents, std::uint32_t children_per_parent,
                             std::uint32_t grandchildren, overlay::OverlayParams params)
    : parents_(parents),
      children_per_parent_(children_per_parent),
      overlay_(build_overlay(parents * children_per_parent, grandchildren, params)) {
  HOURS_EXPECTS(parents >= 1 && children_per_parent >= 1);
  const std::uint32_t n = parents * children_per_parent;

  // Sort members by placement hash to assign ring indices.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto ha = placement_hash(params.seed, a / children_per_parent_,
                                   a % children_per_parent_);
    const auto hb = placement_hash(params.seed, b / children_per_parent_,
                                   b % children_per_parent_);
    if (ha != hb) return ha < hb;
    return a < b;
  });

  index_by_member_.resize(n);
  member_by_index_.resize(n);
  for (std::uint32_t ring = 0; ring < n; ++ring) {
    const std::uint32_t member = order[ring];
    index_by_member_[member] = ring;
    member_by_index_[ring] =
        CousinRef{member / children_per_parent_, member % children_per_parent_};
  }
}

ids::RingIndex CousinOverlay::index_of(CousinRef member) const {
  HOURS_EXPECTS(member.parent < parents_ && member.child < children_per_parent_);
  return index_by_member_[member.parent * children_per_parent_ + member.child];
}

CousinRef CousinOverlay::member_at(ids::RingIndex index) const {
  HOURS_EXPECTS(index < member_by_index_.size());
  return member_by_index_[index];
}

}  // namespace hours::hierarchy
