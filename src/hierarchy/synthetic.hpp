// Lazily materialized synthetic hierarchy for paper-scale simulation.
//
// Section 6.2 evaluates a four-level hierarchy whose attacked level-1
// overlay has 1000 nodes while the target's subtree alone has 50,000
// level-2 children — far too many nodes to instantiate eagerly. Here a node
// exists implicitly (its path is within fanout bounds) and an Overlay object
// is materialized only when a query actually touches that sibling set.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hierarchy/model.hpp"
#include "overlay/params.hpp"

namespace hours::hierarchy {

struct SyntheticSpec {
  /// fanout[i] = children per level-i node; fanout.size() = tree depth.
  std::vector<std::uint32_t> fanout;

  /// Per-node fanout overrides (e.g. the Section 6.2 target with 50,000
  /// children while its siblings keep the default).
  std::map<NodePath, std::uint32_t> fanout_overrides;

  /// Overlays larger than this are regenerated lazily per visit instead of
  /// storing all routing tables.
  std::uint32_t eager_table_limit = 20'000;

  /// Total nodes at each level (diagnostics; honest only without overrides).
  [[nodiscard]] std::uint64_t approx_node_count() const;
};

class SyntheticHierarchy final : public HierarchyModel {
 public:
  SyntheticHierarchy(SyntheticSpec spec, overlay::OverlayParams params);

  [[nodiscard]] std::uint32_t child_count(const NodePath& path) const;
  [[nodiscard]] std::uint32_t child_count(const NodePath& path) override {
    return static_cast<const SyntheticHierarchy*>(this)->child_count(path);
  }
  [[nodiscard]] overlay::Overlay& overlay_of(const NodePath& path) override;
  [[nodiscard]] bool root_alive() const noexcept override { return root_alive_; }
  void set_root_alive(bool alive) noexcept override { root_alive_ = alive; }

  [[nodiscard]] std::size_t depth() const noexcept { return spec_.fanout.size(); }
  [[nodiscard]] const overlay::OverlayParams& params() const noexcept { return params_; }

  /// Number of overlays materialized so far (tests assert laziness).
  [[nodiscard]] std::size_t materialized_overlays() const noexcept { return overlays_.size(); }

 private:
  SyntheticSpec spec_;
  overlay::OverlayParams params_;
  bool root_alive_ = true;
  std::map<NodePath, std::unique_ptr<overlay::Overlay>> overlays_;
};

}  // namespace hours::hierarchy
