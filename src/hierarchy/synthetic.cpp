#include "hierarchy/synthetic.hpp"

#include "rng/splitmix64.hpp"
#include "util/contracts.hpp"

namespace hours::hierarchy {

namespace {

/// Deterministic seed component for the overlay under `path`.
std::uint64_t path_seed(std::uint64_t base, const NodePath& path) {
  std::uint64_t seed = rng::mix64(base, 0x6F76657261ULL /* "overa" */);
  for (const auto index : path) seed = rng::mix64(seed, index);
  return seed;
}

}  // namespace

std::uint64_t SyntheticSpec::approx_node_count() const {
  std::uint64_t total = 1;
  std::uint64_t level_nodes = 1;
  for (const std::uint32_t f : fanout) {
    level_nodes *= f;
    total += level_nodes;
  }
  return total;
}

SyntheticHierarchy::SyntheticHierarchy(SyntheticSpec spec, overlay::OverlayParams params)
    : spec_(std::move(spec)), params_(params) {
  HOURS_EXPECTS(!spec_.fanout.empty());
  for (const std::uint32_t f : spec_.fanout) HOURS_EXPECTS(f >= 1);
}

std::uint32_t SyntheticHierarchy::child_count(const NodePath& path) const {
  if (path.size() >= spec_.fanout.size()) return 0;  // leaf level
  if (const auto it = spec_.fanout_overrides.find(path); it != spec_.fanout_overrides.end()) {
    return it->second;
  }
  return spec_.fanout[path.size()];
}

overlay::Overlay& SyntheticHierarchy::overlay_of(const NodePath& path) {
  const std::uint32_t size = child_count(path);
  HOURS_EXPECTS(size > 0);

  if (const auto it = overlays_.find(path); it != overlays_.end()) return *it->second;

  overlay::OverlayParams params = params_;
  params.seed = path_seed(params_.seed, path);
  const auto storage = size > spec_.eager_table_limit ? overlay::TableStorage::kLazy
                                                      : overlay::TableStorage::kEager;

  // Children of child j of `path` form the next overlay; their count feeds
  // nephew sampling in this overlay's tables.
  NodePath base = path;
  auto child_count_fn = [this, base](ids::RingIndex j) -> std::uint32_t {
    NodePath child_path = base;
    child_path.push_back(j);
    return child_count(child_path);
  };

  auto created = std::make_unique<overlay::Overlay>(size, params, storage,
                                                    overlay::ChildCountFn{child_count_fn});
  auto& slot = overlays_[path];
  slot = std::move(created);
  return *slot;
}

}  // namespace hours::hierarchy
