#include "hierarchy/named.hpp"

#include <algorithm>
#include <functional>

#include "rng/splitmix64.hpp"
#include "util/contracts.hpp"

namespace hours::hierarchy {

namespace {

/// Sibling sets larger than this get lazily regenerated routing tables
/// (O(1) memory per overlay) instead of eager storage — the same knob
/// SyntheticSpec::eager_table_limit exposes, so million-child deployments
/// don't pay O(size * table) memory at admission time.
constexpr std::uint32_t kEagerTableLimit = 20'000;

}  // namespace

struct NamedHierarchy::TreeNode {
  naming::Name name;
  ids::Identifier id;
  bool alive = true;
  TreeNode* parent = nullptr;                   // primary parent
  std::vector<TreeNode*> secondary_parents;     // mesh parents (Section 7)

  std::vector<std::unique_ptr<TreeNode>> owned;  // primary children
  std::vector<TreeNode*> alias_children;         // mesh children (not owned)
  std::vector<TreeNode*> members;                // owned + alias, id-sorted when !members_dirty
  std::unique_ptr<overlay::Overlay> child_overlay;
  // Membership changes invalidate both; the member view (cheap: sort) and
  // the overlay (expensive: routing tables) regenerate independently, so a
  // topology walk never forces a table build.
  bool members_dirty = true;
  bool overlay_dirty = true;

  [[nodiscard]] std::uint32_t member_count() const noexcept {
    return static_cast<std::uint32_t>(owned.size() + alias_children.size());
  }
};

NamedHierarchy::NamedHierarchy(overlay::OverlayParams params)
    : params_(params), root_(std::make_unique<TreeNode>()) {
  params_.validate();
  root_->name = naming::Name{};
  root_->id = ids::Identifier::from_name(root_->name.to_string());
}

NamedHierarchy::~NamedHierarchy() = default;

NamedHierarchy::TreeNode* NamedHierarchy::find_by_name(const naming::Name& name) {
  // Primary names identify nodes; the walk follows owned children only.
  TreeNode* node = root_.get();
  for (std::size_t lvl = 1; lvl <= name.depth(); ++lvl) {
    const std::string& label = name.label(lvl);
    TreeNode* next = nullptr;
    for (const auto& c : node->owned) {
      if (c->name.labels().back() == label) {
        next = c.get();
        break;
      }
    }
    if (next == nullptr) return nullptr;
    node = next;
  }
  return node;
}

NamedHierarchy::TreeNode* NamedHierarchy::find_by_path(const NodePath& path) {
  TreeNode* node = root_.get();
  for (const auto index : path) {
    refresh_members(*node);
    if (index >= node->members.size()) return nullptr;
    node = node->members[index];
  }
  return node;
}

void NamedHierarchy::refresh_members(TreeNode& node) {
  if (!node.members_dirty) return;
  node.members.clear();
  node.members.reserve(node.member_count());
  for (const auto& c : node.owned) node.members.push_back(c.get());
  for (TreeNode* a : node.alias_children) node.members.push_back(a);
  std::sort(node.members.begin(), node.members.end(),
            [](const TreeNode* a, const TreeNode* b) { return a->id < b->id; });
  node.members_dirty = false;
}

void NamedHierarchy::refresh(TreeNode& node) {
  refresh_members(node);
  if (!node.overlay_dirty) return;

  const auto size = static_cast<std::uint32_t>(node.members.size());
  if (size > 0) {
    overlay::OverlayParams params = params_;
    params.seed = rng::mix64(params_.seed, node.id.top64());

    TreeNode* raw = &node;
    auto child_count_fn = [raw](ids::RingIndex j) -> std::uint32_t {
      HOURS_EXPECTS(j < raw->members.size());
      return raw->members[j]->member_count();
    };
    const auto storage = size > kEagerTableLimit ? overlay::TableStorage::kLazy
                                                 : overlay::TableStorage::kEager;
    node.child_overlay = std::make_unique<overlay::Overlay>(
        size, params, storage, overlay::ChildCountFn{child_count_fn});
    // Re-apply liveness: an attacked node stays a (dead) member after a
    // table refresh; only admission changes shift indices.
    for (std::uint32_t j = 0; j < size; ++j) {
      if (!node.members[j]->alive) node.child_overlay->kill(j);
    }
  } else {
    node.child_overlay.reset();
  }
  node.overlay_dirty = false;
}

std::uint32_t NamedHierarchy::index_of(TreeNode& parent, const TreeNode* child) {
  refresh_members(parent);
  const auto it = std::find(parent.members.begin(), parent.members.end(), child);
  HOURS_ASSERT(it != parent.members.end());
  return static_cast<std::uint32_t>(std::distance(parent.members.begin(), it));
}

util::Result<naming::Name> NamedHierarchy::admit(const naming::Name& name) {
  if (name.is_root()) {
    return util::Error{util::Error::Code::kInvalidArgument, "the root exists implicitly"};
  }
  TreeNode* parent_node = find_by_name(name.parent());
  if (parent_node == nullptr) {
    return util::Error{util::Error::Code::kNotFound,
                       "parent not admitted: " + name.parent().to_string()};
  }
  if (find_by_name(name) != nullptr) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "already admitted: " + name.to_string()};
  }

  auto node = std::make_unique<TreeNode>();
  node->name = name;
  node->id = ids::Identifier::from_name(name.to_string());
  node->parent = parent_node;
  parent_node->owned.push_back(std::move(node));
  parent_node->members_dirty = true;
  parent_node->overlay_dirty = true;
  ++node_count_;
  return name;
}

util::Result<naming::Name> NamedHierarchy::admit_secondary(const naming::Name& name,
                                                           const naming::Name& parent) {
  TreeNode* node = find_by_name(name);
  if (node == nullptr) {
    return util::Error{util::Error::Code::kNotFound, "not admitted: " + name.to_string()};
  }
  TreeNode* parent_node = find_by_name(parent);
  if (parent_node == nullptr) {
    return util::Error{util::Error::Code::kNotFound, "not admitted: " + parent.to_string()};
  }
  // Same-level constraint keeps every path to a node equally long (and,
  // since depth strictly increases along paths, rules out cycles).
  if (parent.depth() + 1 != name.depth()) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "secondary parent must sit one level above the node"};
  }
  if (node->parent == parent_node ||
      std::find(node->secondary_parents.begin(), node->secondary_parents.end(), parent_node) !=
          node->secondary_parents.end()) {
    return util::Error{util::Error::Code::kInvalidArgument,
                       "already a parent: " + parent.to_string()};
  }

  node->secondary_parents.push_back(parent_node);
  parent_node->alias_children.push_back(node);
  parent_node->members_dirty = true;
  parent_node->overlay_dirty = true;
  return name;
}

void NamedHierarchy::unlink_aliases_in_subtree(TreeNode& node) {
  // The node may be an alias child elsewhere: detach those memberships.
  for (TreeNode* sp : node.secondary_parents) {
    std::erase(sp->alias_children, &node);
    sp->members_dirty = true;
    sp->overlay_dirty = true;
  }
  node.secondary_parents.clear();
  // The node may have alias children from elsewhere: they survive, minus
  // this parent.
  for (TreeNode* ac : node.alias_children) {
    std::erase(ac->secondary_parents, &node);
  }
  node.alias_children.clear();
  for (const auto& c : node.owned) unlink_aliases_in_subtree(*c);
}

util::Result<naming::Name> NamedHierarchy::remove(const naming::Name& name) {
  if (name.is_root()) {
    return util::Error{util::Error::Code::kInvalidArgument, "cannot remove the root"};
  }
  TreeNode* node = find_by_name(name);
  if (node == nullptr) {
    return util::Error{util::Error::Code::kNotFound, "not admitted: " + name.to_string()};
  }
  TreeNode* parent_node = node->parent;

  unlink_aliases_in_subtree(*node);

  std::size_t removed = 0;
  const std::function<void(const TreeNode&)> count_subtree = [&](const TreeNode& n) {
    removed += 1;
    for (const auto& c : n.owned) count_subtree(*c);
  };
  count_subtree(*node);
  node_count_ -= removed;

  const auto it = std::find_if(parent_node->owned.begin(), parent_node->owned.end(),
                               [&](const auto& c) { return c.get() == node; });
  HOURS_ASSERT(it != parent_node->owned.end());
  parent_node->owned.erase(it);
  parent_node->members_dirty = true;
  parent_node->overlay_dirty = true;
  return name;
}

util::Result<NodePath> NamedHierarchy::resolve(const naming::Name& name) {
  TreeNode* node = find_by_name(name);
  if (node == nullptr) {
    return util::Error{util::Error::Code::kNotFound, "no such node: " + name.to_string()};
  }
  NodePath path(name.depth());
  TreeNode* walk = node;
  for (std::size_t i = name.depth(); i-- > 0;) {
    path[i] = index_of(*walk->parent, walk);
    walk = walk->parent;
  }
  return path;
}

std::vector<NodePath> NamedHierarchy::resolve_paths(const naming::Name& name,
                                                    std::size_t max_paths) {
  TreeNode* node = find_by_name(name);
  if (node == nullptr) return {};

  // Enumerate ancestor chains depth-first, primary parents first, so the
  // primary path is emitted first.
  std::vector<NodePath> out;
  NodePath suffix;  // indices from the current node down to the target, reversed
  const std::function<void(TreeNode*)> walk_up = [&](TreeNode* at) {
    if (out.size() >= max_paths) return;
    if (at->parent == nullptr && at->secondary_parents.empty()) {
      // `at` is the root: the reversed suffix is a complete path.
      NodePath path{suffix.rbegin(), suffix.rend()};
      out.push_back(std::move(path));
      return;
    }
    std::vector<TreeNode*> parents;
    if (at->parent != nullptr) parents.push_back(at->parent);
    parents.insert(parents.end(), at->secondary_parents.begin(),
                   at->secondary_parents.end());
    for (TreeNode* p : parents) {
      if (out.size() >= max_paths) return;
      suffix.push_back(index_of(*p, at));
      walk_up(p);
      suffix.pop_back();
    }
  };
  walk_up(node);
  return out;
}

util::Result<naming::Name> NamedHierarchy::name_of(const NodePath& path) {
  TreeNode* node = find_by_path(path);
  if (node == nullptr) {
    return util::Error{util::Error::Code::kNotFound, "no node at " + to_string(path)};
  }
  return node->name;
}

util::Result<naming::Name> NamedHierarchy::set_alive(const naming::Name& name, bool alive) {
  TreeNode* node = find_by_name(name);
  if (node == nullptr) {
    return util::Error{util::Error::Code::kNotFound, "not admitted: " + name.to_string()};
  }
  node->alive = alive;

  // Mirror into every built overlay the node is a member of; dirty overlays
  // pick the flag up at refresh time.
  std::vector<TreeNode*> parents;
  if (node->parent != nullptr) parents.push_back(node->parent);
  parents.insert(parents.end(), node->secondary_parents.begin(),
                 node->secondary_parents.end());
  for (TreeNode* p : parents) {
    if (p->overlay_dirty || !p->child_overlay) continue;
    const auto j = index_of(*p, node);
    if (alive) {
      p->child_overlay->revive(j);
    } else {
      p->child_overlay->kill(j);
    }
  }
  return name;
}

util::Result<bool> NamedHierarchy::is_alive(const naming::Name& name) {
  const TreeNode* node = find_by_name(name);
  if (node == nullptr) {
    return util::Error{util::Error::Code::kNotFound, "not admitted: " + name.to_string()};
  }
  return node->alive;
}

std::uint32_t NamedHierarchy::child_count(const NodePath& path) {
  TreeNode* node = find_by_path(path);
  if (node == nullptr) return 0;
  return node->member_count();
}

overlay::Overlay& NamedHierarchy::overlay_of(const NodePath& path) {
  TreeNode* node = find_by_path(path);
  HOURS_EXPECTS(node != nullptr);
  refresh(*node);
  HOURS_EXPECTS(node->child_overlay != nullptr);
  return *node->child_overlay;
}

std::vector<NamedHierarchy::MemberInfo> NamedHierarchy::members() const {
  std::vector<MemberInfo> out;
  out.reserve(node_count_);
  const std::function<void(const TreeNode&)> walk = [&](const TreeNode& node) {
    for (const auto& child : node.owned) {
      MemberInfo info;
      info.name = child->name;
      info.alive = child->alive;
      info.secondary_parents.reserve(child->secondary_parents.size());
      for (const TreeNode* sp : child->secondary_parents) {
        info.secondary_parents.push_back(sp->name);
      }
      out.push_back(std::move(info));
      walk(*child);
    }
  };
  walk(*root_);
  return out;
}

NamedHierarchy::TopologySnapshot NamedHierarchy::topology_snapshot() {
  TopologySnapshot snap;
  std::vector<TreeNode*> order{root_.get()};
  order.reserve(node_count_ + 1);
  snap.child_counts.reserve(node_count_ + 1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    TreeNode* node = order[i];
    refresh_members(*node);
    snap.child_counts.push_back(node->member_count());
    if (!node->alive) snap.dead.push_back(static_cast<std::uint32_t>(i));
    for (TreeNode* member : node->members) order.push_back(member);
  }
  return snap;
}

bool NamedHierarchy::root_alive() const noexcept { return root_->alive; }

void NamedHierarchy::set_root_alive(bool alive) noexcept { root_->alive = alive; }

}  // namespace hours::hierarchy
