#include "hierarchy/router.hpp"

#include "util/contracts.hpp"

namespace hours::hierarchy {

namespace {

/// Appends the overlay-internal path (ring indices within `parent_path`'s
/// child overlay) to the outcome's node-path trace.
void append_overlay_trace(RouteOutcome& out, const NodePath& parent_path,
                          const std::vector<ids::RingIndex>& trace, bool skip_first) {
  for (std::size_t i = skip_first ? 1 : 0; i < trace.size(); ++i) {
    out.path.push_back(child(parent_path, trace[i]));
  }
}

}  // namespace

std::optional<ids::RingIndex> Router::pick_entrance(overlay::Overlay& ov, ids::RingIndex od,
                                                    EntrancePolicy policy) {
  switch (policy) {
    case EntrancePolicy::kNearestCcwOfOd:
      return ov.nearest_alive_ccw(od);
    case EntrancePolicy::kRandomAliveChild: {
      if (ov.alive_count() == 0) return std::nullopt;
      // Rejection sampling with a fallback scan for heavily attacked rings.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto candidate = static_cast<ids::RingIndex>(rng_.below(ov.size()));
        if (ov.alive(candidate)) return candidate;
      }
      return ov.nearest_alive_ccw(od);
    }
  }
  return std::nullopt;
}

RouteOutcome Router::route(const NodePath& dest, const RouteOptions& opts,
                           const StartPoint& start) {
  RouteOutcome out;

  // A query is answerable only if the node holding the answer survives
  // (Section 1: HOURS protects accessibility of *surviving* nodes).
  if (!model_.node_alive(dest)) {
    out.failure = util::Error::Code::kDead;
    return out;
  }

  NodePath pos = start.node;
  if (!model_.node_alive(pos)) {
    out.failure = util::Error::Code::kDead;  // bootstrap point itself is down
    return out;
  }
  if (opts.record_path) out.path.push_back(pos);

  // Each loop iteration either descends a level, ascends toward the root
  // (bounded by the start's depth), or terminates; the guard is generous.
  const std::size_t max_iterations = 4 * (dest.size() + pos.size()) + 16;

  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    if (pos == dest) {
      out.delivered = true;
      return out;
    }
    if (opts.max_hops != 0 && out.hops >= opts.max_hops) {
      out.failure = util::Error::Code::kHopLimit;
      return out;
    }

    if (is_prefix(pos, dest)) {
      // Hierarchical forwarding (Algorithm 2, lines 1-7): pos is the alive
      // ancestor v_i; try the on-path child v_{i+1}.
      const ids::RingIndex next_index = dest[pos.size()];
      if (model_.child_count(pos) <= next_index) {
        out.failure = util::Error::Code::kInvalidArgument;
        return out;
      }
      overlay::Overlay& ov = model_.overlay_of(pos);

      if (ov.alive(next_index)) {
        pos = child(pos, next_index);
        out.hops += 1;
        out.hierarchical_hops += 1;
        if (opts.record_path) out.path.push_back(pos);
        if (ov.behavior(next_index) == overlay::NodeBehavior::kDropper) {
          out.failure = util::Error::Code::kDropped;
          return out;
        }
        continue;
      }

      // On-path child dead: hand the query to an alive child, from which
      // overlay forwarding will carry it toward the dead OD.
      const auto entrance = pick_entrance(ov, next_index, opts.entrance);
      if (!entrance.has_value()) {
        out.failure = util::Error::Code::kUnreachable;  // entire sibling set is down
        return out;
      }
      pos = child(pos, *entrance);
      out.hops += 1;
      out.overlay_hops += 1;
      if (opts.record_path) out.path.push_back(pos);
      if (ov.behavior(*entrance) == overlay::NodeBehavior::kDropper) {
        out.failure = util::Error::Code::kDropped;
        return out;
      }
      continue;
    }

    const NodePath pos_parent = parent(pos);
    if (!is_prefix(pos_parent, dest) || pos.size() > dest.size()) {
      // Unrelated subtree, or below the destination (possible for bootstrap
      // starts): climb while the parent survives; there is no sideways
      // detour from here because none of pos's siblings lie on the
      // destination path.
      if (!model_.node_alive(pos_parent)) {
        out.failure = util::Error::Code::kUnreachable;
        return out;
      }
      pos = pos_parent;
      out.hops += 1;
      out.hierarchical_hops += 1;
      if (opts.record_path) out.path.push_back(pos);
      continue;
    }

    // Overlay forwarding (Algorithm 3): pos is a sibling of the on-path node
    // v_i at level i = |pos|; forward toward OD = v_i inside S_i.
    const std::size_t i = pos.size();
    const ids::RingIndex od = dest[i - 1];
    const NodePath od_path = ancestor_at(dest, i);
    overlay::Overlay& ov = model_.overlay_of(pos_parent);

    overlay::ForwardOptions fopts;
    fopts.record_path = opts.record_path;
    if (opts.max_hops != 0) {
      fopts.max_hops = opts.max_hops - out.hops;  // remaining budget (>= 1 here)
    }
    if (i < dest.size()) {
      // Hint for nephew selection: ring index of the next-level OD within
      // the OD's child overlay, plus that overlay's liveness.
      fopts.next_od = dest[i];
      fopts.child_alive = &model_.overlay_of(od_path).alive_vector();
    }

    const overlay::ForwardResult res = ov.forward(pos.back(), od, fopts);
    out.hops += res.hops;
    out.overlay_hops += res.hops;
    out.backward_steps += res.backward_steps;
    out.failed_probes += res.failed_probes;
    if (opts.record_path) append_overlay_trace(out, pos_parent, res.path, /*skip_first=*/true);

    switch (res.kind) {
      case overlay::ExitKind::kArrivedAtOd:
        pos = od_path;  // hierarchical forwarding resumes at v_i
        continue;
      case overlay::ExitKind::kNephewExit: {
        // Inter-overlay hop: down into S_{i+1} through a nephew pointer.
        HOURS_ASSERT(i < dest.size());
        overlay::Overlay& child_ov = model_.overlay_of(od_path);
        pos = child(od_path, res.nephew);
        out.hops += 1;
        out.inter_overlay_hops += 1;
        if (opts.record_path) out.path.push_back(pos);
        if (child_ov.behavior(res.nephew) == overlay::NodeBehavior::kDropper) {
          out.failure = util::Error::Code::kDropped;
          return out;
        }
        continue;
      }
      case overlay::ExitKind::kDropped:
        out.failure = util::Error::Code::kDropped;
        return out;
      case overlay::ExitKind::kUnreachable:
        out.failure = util::Error::Code::kUnreachable;
        return out;
    }
  }

  out.failure = util::Error::Code::kHopLimit;
  return out;
}

}  // namespace hours::hierarchy
