// Mixed hierarchical + overlay query forwarding across the whole service
// hierarchy — Section 3.3's path algebra
//
//   [ ... v_{i-2} -> S_{i-1} -> S_i(v_i) -> v_{i+1} ... ]
//
// implemented on top of Overlay::forward (Algorithm 3) and Algorithm 2's
// per-node rules:
//   * at an alive ancestor of the destination, forward to the on-path child;
//     if that child is dead, enter the child overlay at an alive child and
//     let overlay forwarding carry the query toward the dead child (OD);
//   * at a non-ancestor (a sibling of some on-path node v_i), run overlay
//     forwarding toward OD = v_i; a nephew exit drops the query one level
//     down into S_{i+1}, where forwarding continues toward v_{i+1}.
#pragma once

#include <cstdint>
#include <optional>

#include "hierarchy/model.hpp"
#include "rng/xoshiro256.hpp"
#include "util/status.hpp"

namespace hours::hierarchy {

/// How a parent picks the entrance node when the on-path child is dead.
enum class EntrancePolicy : std::uint8_t {
  /// The alive child nearest counter-clockwise of the dead OD — the parent
  /// manages all children, so it can hand the query straight to the best
  /// detour start (this is also footnote 4's choice). Default.
  kNearestCcwOfOd,
  /// A uniformly random alive child (the literal reading of Algorithm 2
  /// line 6); used to quantify the entrance-choice ablation.
  kRandomAliveChild,
};

struct RouteOptions {
  EntrancePolicy entrance = EntrancePolicy::kNearestCcwOfOd;
  bool record_path = false;
  /// Overall hop budget; 0 means unbounded (loop protection still applies
  /// per overlay). Best-effort: the budget is checked between phases and
  /// handed down to overlay forwarding, so the route fails with kHopLimit
  /// (or kUnreachable if an overlay phase exhausts its remaining share)
  /// within a few hops of the cap.
  std::uint32_t max_hops = 0;
};

/// Where a query enters the system. Default: the root. A bootstrap start
/// (Section 7, "Query Bootstrapping") may be any cached node in the overlays
/// along the destination's top-down path.
struct StartPoint {
  NodePath node;  // empty = root
};

struct RouteOutcome {
  bool delivered = false;
  util::Error::Code failure = util::Error::Code::kInternal;  ///< valid when !delivered

  std::uint32_t hops = 0;             ///< total forwarding hops
  std::uint32_t hierarchical_hops = 0;///< hops along the original tree edges
  std::uint32_t overlay_hops = 0;     ///< hops taken inside overlays (detours)
  std::uint32_t inter_overlay_hops = 0;  ///< nephew-pointer hops between levels
  std::uint32_t backward_steps = 0;
  std::uint32_t failed_probes = 0;
  std::vector<NodePath> path;         ///< visited nodes if opts.record_path
};

class Router {
 public:
  explicit Router(HierarchyModel& model, std::uint64_t seed = 0x524F555445ULL)
      : model_(model), rng_(seed) {}

  /// Routes a query for the node at `dest` from `start` (root by default).
  [[nodiscard]] RouteOutcome route(const NodePath& dest, const RouteOptions& opts = {},
                                   const StartPoint& start = {});

 private:
  /// Picks the entrance into `overlay` toward dead OD `od`.
  [[nodiscard]] std::optional<ids::RingIndex> pick_entrance(overlay::Overlay& ov,
                                                            ids::RingIndex od,
                                                            EntrancePolicy policy);

  HierarchyModel& model_;
  rng::Xoshiro256 rng_;
};

}  // namespace hours::hierarchy
