// Abstract view of an HOURS-protected service hierarchy (Section 2's model).
//
// The router only needs four things from a hierarchy: the shape (how many
// children a node has), the per-sibling-set overlays, liveness, and the
// root's liveness. Two implementations exist:
//   * SyntheticHierarchy — lazily materialized, fanout-driven; used by the
//     benchmark harness at paper scale (Section 6.2's 4-level topology).
//   * NamedHierarchy — an explicit tree built by admitting named nodes, with
//     ring indices assigned by the parent sorting children's SHA-1
//     identifiers, exactly as Section 3.2 describes; used by the examples
//     and the public API.
#pragma once

#include "hierarchy/node_path.hpp"
#include "overlay/overlay.hpp"

namespace hours::hierarchy {

class HierarchyModel {
 public:
  virtual ~HierarchyModel() = default;

  HierarchyModel() = default;
  HierarchyModel(const HierarchyModel&) = delete;
  HierarchyModel& operator=(const HierarchyModel&) = delete;

  /// Number of children of the node at `path` (0 for leaves). Non-const:
  /// implementations may refresh cached membership views while walking.
  [[nodiscard]] virtual std::uint32_t child_count(const NodePath& path) = 0;

  /// The overlay formed by the children of the node at `path`.
  /// Precondition: child_count(path) > 0.
  [[nodiscard]] virtual overlay::Overlay& overlay_of(const NodePath& path) = 0;

  [[nodiscard]] virtual bool root_alive() const noexcept = 0;
  virtual void set_root_alive(bool alive) noexcept = 0;

  /// Liveness of an arbitrary node (root flag, or its parent overlay's bit).
  /// An index past its sibling set names no node at all — never alive.
  [[nodiscard]] bool node_alive(const NodePath& path) {
    if (path.empty()) return root_alive();
    const auto& overlay = overlay_of(parent(path));
    return path.back() < overlay.size() && overlay.alive(path.back());
  }

  /// Marks a (non-root) node dead/alive in its parent overlay.
  void kill(const NodePath& path) {
    if (path.empty()) {
      set_root_alive(false);
      return;
    }
    overlay_of(parent(path)).kill(path.back());
  }
  void revive(const NodePath& path) {
    if (path.empty()) {
      set_root_alive(true);
      return;
    }
    overlay_of(parent(path)).revive(path.back());
  }
};

}  // namespace hours::hierarchy
