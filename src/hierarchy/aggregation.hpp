// Overlay aggregation — the paper's stated future work (Section 7,
// "Unbalanced Hierarchy"):
//
//   "in a small-sized overlay (e.g., with tens of nodes), the achievable
//    DoS resilience is limited. One possible approach is to aggregate
//    multiple small-size overlays into a large one. But the resulting
//    architecture may deviate from the original service hierarchy. We plan
//    to study this issue in the future."
//
// This module studies exactly that. A CousinOverlay merges the children of
// P same-level parents ("cousins") into one randomized overlay of P*C
// members, positioned by a public hash of (parent, child) — the same
// unpredictability argument as Section 3.2. Members keep their original
// administrative parent (admission is unchanged); only the *detour
// structure* widens, which is the deviation the paper worries about: a
// node's routing table now holds pointers to cousins its own parent never
// admitted.
//
// The payoff is quantified in bench/future_overlay_aggregation: with C = 4
// siblings, a per-parent overlay dies to a 4-node attack; the aggregate of
// 100 such families inherits Eq.(2)-grade resilience of a 400-node ring.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "overlay/overlay.hpp"

namespace hours::hierarchy {

/// A member of an aggregated overlay: child `child` of parent `parent`.
struct CousinRef {
  std::uint32_t parent = 0;
  std::uint32_t child = 0;

  friend bool operator==(const CousinRef&, const CousinRef&) = default;
};

class CousinOverlay {
 public:
  /// Aggregates `parents` sibling sets of `children_per_parent` members
  /// each into one overlay. `grandchildren` is the child count of every
  /// member (for nephew pointers). Ring positions are a seeded public hash
  /// of (parent, child).
  CousinOverlay(std::uint32_t parents, std::uint32_t children_per_parent,
                std::uint32_t grandchildren, overlay::OverlayParams params);

  [[nodiscard]] std::uint32_t size() const noexcept { return overlay_.size(); }
  [[nodiscard]] overlay::Overlay& overlay() noexcept { return overlay_; }

  /// Ring index of a member / inverse.
  [[nodiscard]] ids::RingIndex index_of(CousinRef member) const;
  [[nodiscard]] CousinRef member_at(ids::RingIndex index) const;

  /// Kills/revives a member by its (parent, child) identity.
  void kill(CousinRef member) { overlay_.kill(index_of(member)); }
  void revive(CousinRef member) { overlay_.revive(index_of(member)); }

  /// Intra-overlay forwarding toward `od`, entering at `entrance`.
  [[nodiscard]] overlay::ForwardResult forward(CousinRef entrance, CousinRef od,
                                               const overlay::ForwardOptions& opts = {}) const {
    return overlay_.forward(index_of(entrance), index_of(od), opts);
  }

 private:
  std::uint32_t parents_;
  std::uint32_t children_per_parent_;
  std::vector<ids::RingIndex> index_by_member_;  // [parent * C + child] -> ring index
  std::vector<CousinRef> member_by_index_;
  overlay::Overlay overlay_;
};

}  // namespace hours::hierarchy
