// Node identity within a service hierarchy.
//
// A node is addressed by the sequence of ring indices on the path from the
// root: {} is the root, {7} the level-1 node with index 7 in the root's
// child overlay, {7, 123} that node's child with index 123, and so on. This
// representation lets multi-million-node hierarchies exist lazily — a node
// "exists" by virtue of its path being within the fanout bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ids/ring.hpp"

namespace hours::hierarchy {

using NodePath = std::vector<ids::RingIndex>;

/// Level of the node (0 = root).
[[nodiscard]] inline std::size_t level(const NodePath& path) noexcept { return path.size(); }

/// Parent path; precondition: not the root.
[[nodiscard]] NodePath parent(const NodePath& path);

/// The path extended by child index `i`.
[[nodiscard]] NodePath child(const NodePath& path, ids::RingIndex i);

/// The ancestor of `path` at `lvl` (a prefix).
[[nodiscard]] NodePath ancestor_at(const NodePath& path, std::size_t lvl);

/// True if `prefix` equals `path` or is an ancestor of it.
[[nodiscard]] bool is_prefix(const NodePath& prefix, const NodePath& path) noexcept;

/// "/", "/7", "/7/123", ... for diagnostics.
[[nodiscard]] std::string to_string(const NodePath& path);

}  // namespace hours::hierarchy
