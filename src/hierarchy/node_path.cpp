#include "hierarchy/node_path.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace hours::hierarchy {

NodePath parent(const NodePath& path) {
  HOURS_EXPECTS(!path.empty());
  return NodePath{path.begin(), path.end() - 1};
}

NodePath child(const NodePath& path, ids::RingIndex i) {
  NodePath down = path;
  down.push_back(i);
  return down;
}

NodePath ancestor_at(const NodePath& path, std::size_t lvl) {
  HOURS_EXPECTS(lvl <= path.size());
  return NodePath{path.begin(), path.begin() + static_cast<std::ptrdiff_t>(lvl)};
}

bool is_prefix(const NodePath& prefix, const NodePath& path) noexcept {
  if (prefix.size() > path.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), path.begin());
}

std::string to_string(const NodePath& path) {
  if (path.empty()) return "/";
  std::string out;
  for (const auto index : path) {
    out += '/';
    out += std::to_string(index);
  }
  return out;
}

}  // namespace hours::hierarchy
