// An explicit, named service hierarchy — the deployment-shaped counterpart
// of SyntheticHierarchy.
//
// Nodes are admitted by hierarchical name under their parent (Section 3.1:
// HOURS preserves delegated management; a parent enforces admission control
// over its children, which is what keeps Sybil attackers out in Section
// 5.3). Each node's overlay identifier is SHA-1(name); the parent assigns
// ring indices by sorting children identifiers and walking the circle
// clockwise, exactly as Section 3.2 prescribes.
//
// Mesh topology (Section 7): a node may register *secondary parents* at the
// same level as its primary parent. It then joins every such parent's child
// overlay as a full member ("HOURS does not prohibit a node with multiple
// parent nodes from joining multiple overlays"), which yields multiple
// top-down paths — resolve_paths() enumerates them, and HoursSystem retries
// queries across them.
//
// Membership changes mark the affected overlays dirty; they are
// re-generated on next access, mirroring the paper's periodic routing-table
// regeneration (Section 7, "Overlay Maintenance"). Ring indices may shift
// when membership changes, so NodePaths should be re-resolved from names
// afterwards.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hierarchy/model.hpp"
#include "ids/identifier.hpp"
#include "naming/name.hpp"
#include "overlay/params.hpp"
#include "util/status.hpp"

namespace hours::hierarchy {

class NamedHierarchy final : public HierarchyModel {
 public:
  explicit NamedHierarchy(overlay::OverlayParams params);
  ~NamedHierarchy() override;

  /// Admits a node under its (already admitted) primary parent. The root
  /// exists implicitly. Fails on duplicates or a missing parent.
  util::Result<naming::Name> admit(const naming::Name& name);

  /// Mesh topology: registers `parent` as an additional parent of the
  /// (already admitted) node `name`. The secondary parent must sit at the
  /// same level as the primary parent (so every path to the node has equal
  /// length) and must not already be a parent.
  util::Result<naming::Name> admit_secondary(const naming::Name& name,
                                             const naming::Name& parent);

  /// Removes a node and its entire subtree from the hierarchy (a voluntary
  /// leave, as opposed to a DoS failure). Alias memberships are unlinked.
  util::Result<naming::Name> remove(const naming::Name& name);

  /// Resolves a name to its primary NodePath (ring indices along the path).
  [[nodiscard]] util::Result<NodePath> resolve(const naming::Name& name);

  /// All top-down paths to `name` (primary-parent path first), up to
  /// `max_paths`. More than one entry implies mesh parents somewhere on the
  /// ancestor chain.
  [[nodiscard]] std::vector<NodePath> resolve_paths(const naming::Name& name,
                                                    std::size_t max_paths = 8);

  /// Inverse of resolve (any alias path maps back to the node's one name).
  [[nodiscard]] util::Result<naming::Name> name_of(const NodePath& path);

  /// Marks a node dead/alive (DoS attack semantics: the node is unreachable
  /// but still a member; its index does not shift). Liveness is mirrored
  /// into every overlay the node belongs to.
  util::Result<naming::Name> set_alive(const naming::Name& name, bool alive);
  [[nodiscard]] util::Result<bool> is_alive(const naming::Name& name);

  /// Number of admitted nodes (excluding the root; aliases do not count).
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// One admitted node's serializable membership facts.
  struct MemberInfo {
    naming::Name name;
    bool alive = true;
    std::vector<naming::Name> secondary_parents;  ///< mesh registrations
  };

  /// Every admitted node in pre-order (a parent precedes its primary
  /// children), for snapshot serialization: re-admitting names in this
  /// order — then registering the secondary parents — reproduces the
  /// hierarchy exactly, since ring indices derive from identifier sorting,
  /// not admission order.
  [[nodiscard]] std::vector<MemberInfo> members() const;

  /// Flat BFS image of the member tree, in exactly the level order
  /// sim::HierarchySimulation assigns node ids: child_counts[i] is node i's
  /// member count, `dead` lists the BFS ids currently marked dead. Mesh
  /// alias children appear once per parent (each membership is a distinct
  /// simulation node), matching the path-enumeration the event backend used
  /// to perform — but without materializing any NodePath or name.
  struct TopologySnapshot {
    std::vector<std::uint32_t> child_counts;
    std::vector<std::uint32_t> dead;
  };
  [[nodiscard]] TopologySnapshot topology_snapshot();

  // -- HierarchyModel ----------------------------------------------------------
  [[nodiscard]] std::uint32_t child_count(const NodePath& path) override;
  [[nodiscard]] overlay::Overlay& overlay_of(const NodePath& path) override;
  [[nodiscard]] bool root_alive() const noexcept override;
  void set_root_alive(bool alive) noexcept override;

 private:
  struct TreeNode;

  [[nodiscard]] TreeNode* find_by_name(const naming::Name& name);
  [[nodiscard]] TreeNode* find_by_path(const NodePath& path);

  /// Sorts the member view (owned + alias children) by identifier if stale.
  /// Never builds routing tables, so topology walks stay cheap at scale.
  void refresh_members(TreeNode& node);

  /// refresh_members plus (re)building the child overlay if stale — the
  /// expensive step, deferred until graph routing actually visits the node.
  void refresh(TreeNode& node);

  /// Ring index of `child` within `parent`'s refreshed member view.
  [[nodiscard]] std::uint32_t index_of(TreeNode& parent, const TreeNode* child);

  void unlink_aliases_in_subtree(TreeNode& node);

  overlay::OverlayParams params_;
  std::unique_ptr<TreeNode> root_;
  std::size_t node_count_ = 0;
};

}  // namespace hours::hierarchy
