// Unified liveness plane: one per-simulation store for every "who do I
// currently distrust" decision (DESIGN.md §11).
//
// Suspicion used to be re-implemented four times — the ring's per-node
// std::set, the hierarchy's flat (node<<32)|peer expiry map, QueryClient's
// TTL map, and the event backend's silence inference riding on the
// hierarchy's — each with its own expiry convention. LivenessView keeps all
// of them in a single ordered map keyed (observer<<32)|peer whose entries
// carry {expiry, since, source}, exactly reproducing each call site's
// semantics:
//
//   * ring:        suspicion_ttl == 0 -> entries never expire; membership
//                  (contains) is the routing filter, cleared on any direct
//                  contact or revival;
//   * hierarchy /  suspicion_ttl != 0 -> an entry is active while
//     client:      expiry > now; expired entries stay in the map (and in
//                  snapshots) until overwritten or cleared, matching the
//                  historical maps bit for bit.
//
// Evidence sources form the pluggable seam: kProbe entries are local
// timeout inferences (today's only source), kGossip entries arrive in
// bounded digests piggybacked on existing transport traffic. `since`
// records when the evidence was first produced — digests re-broadcast the
// original observation time, so a rumor ages across hops and the
// digest_horizon bounds how far (in sim-time) it can propagate.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace hours::liveness {

using Ticks = std::uint64_t;
using NodeId = std::uint32_t;

/// The one shared suspicion-TTL default. QueryClientConfig::suspicion_ttl,
/// EventBackendConfig::suspicion_ttl and HierarchySimConfig::suspicion_ttl
/// all default to this constant (regression-pinned in tests/liveness_test).
inline constexpr Ticks kDefaultSuspicionTtl = 4'000;

/// Entry expiry meaning "until explicitly cleared" (ring semantics, and the
/// ttl == 0 convention of the hierarchy/client maps).
inline constexpr Ticks kNeverExpires = ~Ticks{0};

/// Default bound on digest entries piggybacked per transport message.
inline constexpr std::uint32_t kDefaultDigestBudget = 4;

/// Default evidence-age cutoff: gossip entries whose original observation
/// is older than this many ticks are neither re-broadcast nor adopted.
inline constexpr Ticks kDefaultDigestHorizon = 16'000;

enum class Mode : std::uint8_t {
  kProbeOnly = 0,  ///< local timeout inference only (bit-exact legacy behavior)
  kGossip = 1,     ///< probe inference + piggybacked suspicion digests
};

enum class Source : std::uint8_t {
  kProbe = 0,   ///< local probe/attempt timeout
  kGossip = 1,  ///< adopted from a peer's digest
};

struct Config {
  Mode mode = Mode::kProbeOnly;
  std::uint32_t digest_budget = kDefaultDigestBudget;
  Ticks digest_horizon = kDefaultDigestHorizon;
};

struct Entry {
  Ticks expiry = kNeverExpires;  ///< active while kNeverExpires or > now
  Ticks since = 0;               ///< sim-time of the original evidence
  Source source = Source::kProbe;
};

/// One digest row on the wire: "someone observed `peer` silent at `since`".
struct DigestEntry {
  NodeId peer = 0;
  Ticks since = 0;
};

class LivenessView {
 public:
  explicit LivenessView(Config config = {}, Ticks suspicion_ttl = 0)
      : config_(config), ttl_(suspicion_ttl) {}

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] Ticks suspicion_ttl() const noexcept { return ttl_; }
  [[nodiscard]] bool gossip_enabled() const noexcept {
    return config_.mode == Mode::kGossip;
  }

  /// Local (probe) suspicion: overwrites any existing entry with expiry
  /// now+ttl (kNeverExpires when ttl == 0) and since = now. Returns true
  /// when the row was newly inserted — the ring traces only on insertion.
  bool suspect(NodeId observer, NodeId peer, Ticks now) {
    auto [it, inserted] = rows_.insert_or_assign(
        key(observer, peer), Entry{expiry_at(now), now, Source::kProbe});
    (void)it;
    return inserted;
  }

  /// Gossip adoption: inserts only when the row is absent, preserving the
  /// rumor's original observation time so it ages across hops. Returns
  /// false (no-op) when the observer already holds any entry for the peer.
  bool adopt(NodeId observer, NodeId peer, Ticks since, Ticks now) {
    return rows_.emplace(key(observer, peer), Entry{expiry_at(now), since, Source::kGossip})
        .second;
  }

  /// Raw membership, ignoring expiry — the ring's routing filter (its
  /// entries never expire, so membership and activeness coincide).
  [[nodiscard]] bool contains(NodeId observer, NodeId peer) const {
    return rows_.count(key(observer, peer)) != 0;
  }

  /// TTL-filtered activeness — the hierarchy/client filter. Expired rows
  /// remain in the map (and in snapshots) until overwritten or cleared.
  [[nodiscard]] bool is_suspected(NodeId observer, NodeId peer, Ticks now) const {
    const auto it = rows_.find(key(observer, peer));
    if (it == rows_.end()) return false;
    return it->second.expiry == kNeverExpires || it->second.expiry > now;
  }

  /// Erases one row (proof of life); returns whether it existed.
  bool clear(NodeId observer, NodeId peer) {
    return rows_.erase(key(observer, peer)) != 0;
  }

  /// Drops everything `observer` suspects (ring revival of the observer).
  void clear_observer(NodeId observer) {
    rows_.erase(rows_.lower_bound(key(observer, 0)),
                observer == ~NodeId{0} ? rows_.end()
                                       : rows_.lower_bound(key(observer + 1, 0)));
  }

  /// Drops every observer's entry for `peer` (hierarchy revival: the node
  /// is authoritatively back, all stale suspicion of it is cleared).
  void clear_peer(NodeId peer) {
    for (auto it = rows_.begin(); it != rows_.end();) {
      if (static_cast<NodeId>(it->first & 0xFFFFFFFFULL) == peer) {
        it = rows_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void clear_all() noexcept { rows_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  [[nodiscard]] std::size_t count_observer(NodeId observer) const {
    return static_cast<std::size_t>(
        std::distance(rows_.lower_bound(key(observer, 0)),
                      observer == ~NodeId{0} ? rows_.end()
                                             : rows_.lower_bound(key(observer + 1, 0))));
  }

  [[nodiscard]] bool observer_empty(NodeId observer) const {
    const auto it = rows_.lower_bound(key(observer, 0));
    return it == rows_.end() || static_cast<NodeId>(it->first >> 32) != observer;
  }

  /// Round-robin helper for the ring's suspicion refresh: the smallest
  /// suspected peer >= cursor, wrapping to the observer's smallest entry.
  /// Requires !observer_empty(observer).
  [[nodiscard]] NodeId next_at_or_after(NodeId observer, NodeId cursor) const {
    auto it = rows_.lower_bound(key(observer, cursor));
    if (it == rows_.end() || static_cast<NodeId>(it->first >> 32) != observer) {
      it = rows_.lower_bound(key(observer, 0));
    }
    return static_cast<NodeId>(it->first & 0xFFFFFFFFULL);
  }

  /// Ascending (observer, peer) iteration — snapshot serialization order,
  /// identical to the historical flat maps' key order.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [k, entry] : rows_) {
      f(static_cast<NodeId>(k >> 32), static_cast<NodeId>(k & 0xFFFFFFFFULL), entry);
    }
  }

  /// Ascending peer iteration over one observer's rows.
  template <typename F>
  void for_each_observer(NodeId observer, F&& f) const {
    for (auto it = rows_.lower_bound(key(observer, 0));
         it != rows_.end() && static_cast<NodeId>(it->first >> 32) == observer; ++it) {
      f(static_cast<NodeId>(it->first & 0xFFFFFFFFULL), it->second);
    }
  }

  /// The bounded digest `observer` piggybacks on outgoing traffic: its
  /// freshest active entries whose evidence is within digest_horizon,
  /// ordered (since desc, peer asc), truncated to digest_budget.
  [[nodiscard]] std::vector<DigestEntry> build_digest(NodeId observer, Ticks now) const;

  /// True when a digest row is still worth spreading/adopting at `now`.
  [[nodiscard]] bool within_horizon(Ticks since, Ticks now) const noexcept {
    return since + config_.digest_horizon > now;
  }

  /// Snapshot restore: installs a row verbatim (expiry/since/source as
  /// saved), bypassing the ttl computation.
  void restore_row(NodeId observer, NodeId peer, Entry entry) {
    rows_[key(observer, peer)] = entry;
  }

 private:
  [[nodiscard]] static std::uint64_t key(NodeId observer, NodeId peer) noexcept {
    return (static_cast<std::uint64_t>(observer) << 32) | peer;
  }
  [[nodiscard]] Ticks expiry_at(Ticks now) const noexcept {
    return ttl_ == 0 ? kNeverExpires : now + ttl_;
  }

  Config config_;
  Ticks ttl_;
  std::map<std::uint64_t, Entry> rows_;
};

}  // namespace hours::liveness
