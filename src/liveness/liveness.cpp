#include "liveness/liveness.hpp"

#include <algorithm>

namespace hours::liveness {

std::vector<DigestEntry> LivenessView::build_digest(NodeId observer, Ticks now) const {
  std::vector<DigestEntry> digest;
  for_each_observer(observer, [&](NodeId peer, const Entry& entry) {
    const bool active = entry.expiry == kNeverExpires || entry.expiry > now;
    if (!active || !within_horizon(entry.since, now)) return;
    digest.push_back(DigestEntry{peer, entry.since});
  });
  // Freshest evidence first; peer ascending breaks ties so the selection is
  // deterministic for a fixed map state.
  std::sort(digest.begin(), digest.end(), [](const DigestEntry& a, const DigestEntry& b) {
    if (a.since != b.since) return a.since > b.since;
    return a.peer < b.peer;
  });
  if (digest.size() > config_.digest_budget) digest.resize(config_.digest_budget);
  return digest;
}

}  // namespace hours::liveness
