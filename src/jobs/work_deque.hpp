// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05) with the C11
// memory-ordering discipline of Lê, Pop, Cohen & Zappa Nardelli, "Correct
// and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13), with one
// deliberate deviation: every bottom_ store a thief may act on is a
// *release store* rather than the paper's release-fence + relaxed store.
// The two are equivalently correct here (each publishes the payload writes
// that precede it to the acquire load in steal()), but ThreadSanitizer does
// not model std::atomic_thread_fence, so the fence formulation reports
// false-positive races on stolen payloads — and the TSan CI job runs every
// unit test over this deque.
//
// One owner thread pushes and pops at the bottom; any number of thieves
// steal from the top. The deque stores raw pointers and never owns them:
// every successfully pushed pointer is returned by exactly one pop() or
// steal() (the executor relies on this exactly-once guarantee for task
// accounting). pop() and steal() may return nullptr spuriously when a race
// for the last element is lost — callers treat that as "look elsewhere",
// not "empty forever".
//
// Growth keeps the retired buffers alive until the deque is destroyed: a
// thief may still be reading an old buffer after the owner swapped in a
// bigger one, and the handful of superseded arrays is cheaper than a
// reclamation protocol.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/contracts.hpp"

namespace hours::jobs {

template <typename T>
class WorkDeque {
 public:
  explicit WorkDeque(std::size_t capacity_hint = 64)
      : array_(new Array(round_up_pow2(capacity_hint < 8 ? 8 : capacity_hint))) {}

  ~WorkDeque() { delete array_.load(std::memory_order_relaxed); }

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner only. Publishes `item` at the bottom; grows the buffer when full.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) a = grow(a, b, t);
    a->put(b, item);
    bottom_.store(b + 1, std::memory_order_release);  // publishes the payload
  }

  /// Owner only. Takes the most recently pushed item; nullptr when empty or
  /// when a thief won the race for the last element.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T* item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Single element left: race thieves for it via top.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief got there first
        }
        bottom_.store(b + 1, std::memory_order_release);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_release);
    }
    return item;
  }

  /// Any thread. Takes the oldest item; nullptr when empty or on a lost
  /// race (another thief or the owner claimed it).
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_acquire);
    T* item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Approximate (racy) — only good for "probably worth visiting" hints.
  [[nodiscard]] bool looks_empty() const noexcept {
    return top_.load(std::memory_order_relaxed) >= bottom_.load(std::memory_order_relaxed);
  }

 private:
  struct Array {
    explicit Array(std::int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T*>[]>(static_cast<std::size_t>(cap))) {}

    [[nodiscard]] T* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i & mask)].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) noexcept {
      slots[static_cast<std::size_t>(i & mask)].store(v, std::memory_order_relaxed);
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  static std::int64_t round_up_pow2(std::size_t n) noexcept {
    std::int64_t p = 1;
    while (p < static_cast<std::int64_t>(n)) p <<= 1;
    return p;
  }

  /// Owner only (from push). The old buffer is retired, not freed: a
  /// concurrent thief may still hold its pointer.
  Array* grow(Array* old, std::int64_t b, std::int64_t t) {
    auto grown = std::make_unique<Array>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) grown->put(i, old->get(i));
    Array* raw = grown.release();
    array_.store(raw, std::memory_order_release);
    retired_.emplace_back(old);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<std::unique_ptr<Array>> retired_;  // owner-only; freed at destruction
};

}  // namespace hours::jobs
