// Minimal epoch-based reclamation (RCU-style) for read-mostly pointers —
// the memory-safety half of the resolver's lock-free read path.
//
// Readers are wait-free and lock-free: entering a critical section is two
// atomic stores into a per-thread slot (announce the current epoch,
// double-checked against a concurrent advance), leaving is one. While a
// ReadGuard is alive, any pointer loaded from an rcu-published atomic stays
// valid even if a writer swaps and retires it concurrently.
//
// Writers (serialized by the caller — one writer mutex per domain) swap the
// live pointer first, then retire() the old object and call
// advance_and_reclaim(): the epoch advances and every retired object whose
// retire-epoch precedes the oldest announced reader epoch is freed.
// Readers stalled inside a guard only defer reclamation, never break it.
//
// Slots are claimed per (thread, domain) on first use and held for the
// thread's lifetime; kMaxReaders bounds the number of distinct reader
// threads per domain (plenty for a serving front-end's thread pool).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace hours::jobs {

class RcuDomain {
 public:
  static constexpr std::size_t kMaxReaders = 256;

  RcuDomain() : id_(next_id().fetch_add(1, std::memory_order_relaxed)) {
    for (auto& slot : slots_) slot.store(kIdle, std::memory_order_relaxed);
  }

  ~RcuDomain() {
    // No readers may be active; free everything still pending.
    for (auto& entry : retired_) entry.deleter();
  }

  RcuDomain(const RcuDomain&) = delete;
  RcuDomain& operator=(const RcuDomain&) = delete;

  /// RAII read-side critical section. Cheap enough for one per cache probe.
  class ReadGuard {
   public:
    explicit ReadGuard(RcuDomain& domain) : slot_(domain.reader_slot()) {
      // Announce-then-verify: if a writer advanced the epoch between our
      // load and our announcement, re-announce so the writer's slot scan
      // (which happens after its advance) cannot miss us holding an
      // already-retired epoch.
      for (;;) {
        const std::uint64_t epoch = domain.epoch_.load(std::memory_order_seq_cst);
        slot_->store(epoch, std::memory_order_seq_cst);
        if (domain.epoch_.load(std::memory_order_seq_cst) == epoch) break;
      }
    }
    ~ReadGuard() { slot_->store(kIdle, std::memory_order_release); }

    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    std::atomic<std::uint64_t>* slot_;
  };

  /// Writer side, caller-serialized: queue `deleter` for the object just
  /// unlinked from the live pointer.
  void retire(std::function<void()> deleter) {
    retired_.push_back({epoch_.load(std::memory_order_relaxed), std::move(deleter)});
  }

  /// Writer side, caller-serialized: advance the epoch and free every
  /// retired object no announced reader can still see.
  void advance_and_reclaim() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    std::uint64_t min_active = kIdle;
    for (const auto& slot : slots_) {
      const std::uint64_t announced = slot.load(std::memory_order_seq_cst);
      if (announced < min_active) min_active = announced;
    }
    std::size_t kept = 0;
    for (auto& entry : retired_) {
      if (entry.epoch < min_active) {
        entry.deleter();
      } else {
        retired_[kept++] = std::move(entry);
      }
    }
    retired_.resize(kept);
  }

  /// Retired-but-not-yet-freed count (tests assert reclamation happens).
  [[nodiscard]] std::size_t pending_reclaims() const noexcept { return retired_.size(); }

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  static std::atomic<std::uint64_t>& next_id() {
    static std::atomic<std::uint64_t> counter{1};
    return counter;
  }

  /// The calling thread's slot in this domain, claimed on first use. The
  /// cache key includes the domain's globally unique id, so a new domain
  /// reusing a dead one's address can never inherit stale slot claims.
  std::atomic<std::uint64_t>* reader_slot() {
    thread_local std::vector<std::pair<std::uint64_t, std::atomic<std::uint64_t>*>> cache;
    for (const auto& [id, slot] : cache) {
      if (id == id_) return slot;
    }
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      bool expected = false;
      if (claimed_[i].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
        cache.emplace_back(id_, &slots_[i]);
        return &slots_[i];
      }
    }
    HOURS_ASSERT(false && "RcuDomain: more than kMaxReaders distinct reader threads");
    return nullptr;  // unreachable
  }

  struct Retired {
    std::uint64_t epoch;
    std::function<void()> deleter;
  };

  const std::uint64_t id_;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> slots_[kMaxReaders];
  std::atomic<bool> claimed_[kMaxReaders] = {};
  std::vector<Retired> retired_;  // writer-side only
};

}  // namespace hours::jobs
