#include "jobs/executor.hpp"

#include "rng/splitmix64.hpp"

namespace hours::jobs {

namespace {

thread_local Executor* tls_executor = nullptr;
thread_local unsigned tls_worker = 0;  // meaningful only when tls_executor != nullptr
// Tasks currently executing on this thread's call stack (helping nests).
// wait_idle() from inside a task must not wait for the caller itself.
thread_local std::uint64_t tls_depth = 0;

}  // namespace

Executor* Executor::current() noexcept { return tls_executor; }

unsigned Executor::current_worker_index() noexcept { return tls_worker; }

Executor::Executor(unsigned threads) {
  unsigned n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    // Distinct victim-selection streams; determinism is not required here
    // (task results never depend on who ran them), distribution is.
    worker->steal_state = 0x9E3779B97F4A7C15ULL * (i + 1);
    workers_.push_back(std::move(worker));
  }
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  wait_idle();  // drain: shutdown-while-busy never drops submitted work
  {
    std::lock_guard<std::mutex> lock{sleep_mutex_};
    stopping_.store(true, std::memory_order_release);
    wake_epoch_.fetch_add(1, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void Executor::enqueue(detail::Job* job) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (tls_executor == this) {
    workers_[tls_worker]->deque.push(job);
  } else {
    std::lock_guard<std::mutex> lock{inject_mutex_};
    inject_.push_back(job);
  }
  {
    // The epoch bump happens under the sleep mutex so a worker that just
    // scanned empty and is about to wait cannot miss it.
    std::lock_guard<std::mutex> lock{sleep_mutex_};
    wake_epoch_.fetch_add(1, std::memory_order_release);
  }
  sleep_cv_.notify_one();
}

detail::Job* Executor::find_work(unsigned self) {
  // 1. Own deque (LIFO end — cache-warm, and the owner always drains what
  //    it spawned even if every thief sleeps).
  if (detail::Job* job = workers_[self]->deque.pop()) return job;
  // 2. Global injection queue.
  {
    std::lock_guard<std::mutex> lock{inject_mutex_};
    if (!inject_.empty()) {
      detail::Job* job = inject_.front();
      inject_.pop_front();
      return job;
    }
  }
  // 3. Steal. Two passes over randomly rotated victims: steal() fails
  //    spuriously on a lost race, and a second look is cheaper than an
  //    early sleep.
  const auto n = static_cast<unsigned>(workers_.size());
  if (n <= 1) return nullptr;  // nobody to steal from
  std::uint64_t& rng_state = workers_[self]->steal_state;
  for (int pass = 0; pass < 2; ++pass) {
    const auto start = static_cast<unsigned>(rng::splitmix64_next(rng_state) % n);
    for (unsigned k = 0; k < n; ++k) {
      const unsigned victim = (start + k) % n;
      if (victim == self) continue;
      if (detail::Job* job = workers_[victim]->deque.steal()) return job;
    }
  }
  return nullptr;
}

void Executor::execute(detail::Job* job) {
  ++tls_depth;
  job->run();  // never throws: the submit() wrapper captures into the future
  --tls_depth;
  delete job;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock{idle_mutex_};
    idle_cv_.notify_all();
  }
}

void Executor::wait_idle() {
  if (current() == this) {
    // The tasks on this thread's own call stack cannot finish until this
    // call returns, so "idle" here means nothing outstanding beyond them.
    help_until(
        [this] { return outstanding_.load(std::memory_order_acquire) <= tls_depth; });
    return;
  }
  std::unique_lock<std::mutex> lock{idle_mutex_};
  idle_cv_.wait(lock, [this] { return outstanding_.load(std::memory_order_acquire) == 0; });
}

void Executor::worker_loop(unsigned index) {
  tls_executor = this;
  tls_worker = index;
  for (;;) {
    // Capture the epoch *before* scanning: an enqueue that lands mid-scan
    // changes the epoch and turns the wait below into a no-op.
    const std::uint64_t epoch = wake_epoch_.load(std::memory_order_acquire);
    if (detail::Job* job = find_work(index)) {
      execute(job);
      continue;
    }
    std::unique_lock<std::mutex> lock{sleep_mutex_};
    if (stopping_.load(std::memory_order_acquire)) break;
    sleep_cv_.wait(lock, [this, epoch] {
      return wake_epoch_.load(std::memory_order_acquire) != epoch ||
             stopping_.load(std::memory_order_acquire);
    });
    // The destructor only stops after wait_idle(), so stopping_ implies no
    // submitted work remains; loop back to re-check either way.
  }
  tls_executor = nullptr;
}

}  // namespace hours::jobs
