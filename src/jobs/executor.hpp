// Work-stealing thread-pool executor (ROADMAP "parallel experiment fleet +
// concurrent serving front-end").
//
// One Executor owns N worker threads. Each worker keeps a Chase-Lev deque
// (work_deque.hpp): tasks spawned *from* a worker go to that worker's own
// deque (LIFO for locality, stolen FIFO), tasks submitted from outside land
// in a mutex-protected global injection queue. Idle workers drain their own
// deque, then the injection queue, then steal from random victims, and
// finally sleep on a condition variable; every enqueue bumps a wake epoch
// so no submission is missed.
//
// submit() returns a Future<T>. get() on a worker thread of the same
// executor does not block: it *helps*, running queued tasks until the
// result is ready — recursive fork/join from inside tasks therefore cannot
// deadlock the pool. get() on any other thread blocks on a condition
// variable. Exceptions thrown by a task are captured and rethrown from
// get().
//
// Shutdown semantics: the destructor first waits for every submitted task
// (including tasks spawned by tasks) to finish, then stops and joins the
// workers — "shutdown while busy" drains, it never drops work. Submitting
// from outside the pool concurrently with destruction is a contract
// violation.
//
// Determinism contract (see jobs/sweep.hpp): the executor itself makes no
// ordering promises — parallel sweeps are thread-count-invariant because
// each task derives its RNG from (sweep_seed, task_index) and results merge
// in task-index order, never because of scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "jobs/work_deque.hpp"
#include "util/contracts.hpp"

namespace hours::jobs {

class Executor;

namespace detail {

struct Job {
  std::function<void()> run;
};

struct SharedStateBase {
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<bool> ready{false};
  std::exception_ptr error;

  void mark_ready() {
    {
      std::lock_guard<std::mutex> lock{mutex};
      ready.store(true, std::memory_order_release);
    }
    cv.notify_all();
  }

  void wait_blocking() {
    std::unique_lock<std::mutex> lock{mutex};
    cv.wait(lock, [this] { return ready.load(std::memory_order_acquire); });
  }

  [[nodiscard]] bool is_ready() const noexcept {
    return ready.load(std::memory_order_acquire);
  }
};

template <typename T>
struct SharedState : SharedStateBase {
  std::optional<T> value;
};

template <>
struct SharedState<void> : SharedStateBase {};

}  // namespace detail

/// Handle to a task's eventual result. Movable and copyable (shared state);
/// get() may be called once per value (it moves non-void results out).
template <typename T>
class Future {
 public:
  Future() = default;

  /// Blocks until the task finished; rethrows the task's exception if it
  /// threw. On a worker thread of the owning executor this helps (runs
  /// other queued tasks) instead of blocking.
  T get();

  [[nodiscard]] bool ready() const noexcept { return state_ && state_->is_ready(); }
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Executor;
  Future(Executor* exec, std::shared_ptr<detail::SharedState<T>> state)
      : exec_(exec), state_(std::move(state)) {}

  Executor* exec_ = nullptr;
  std::shared_ptr<detail::SharedState<T>> state_;
};

class Executor {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (at least 1).
  explicit Executor(unsigned threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Schedules `fn` (must be copy-constructible; invoked exactly once) and
  /// returns a future for its result. Safe to call from worker threads
  /// (spawn-from-task) and from any external thread.
  template <typename F>
  auto submit(F&& fn) -> Future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto state = std::make_shared<detail::SharedState<R>>();
    auto* job = new detail::Job;
    job->run = [state, task = std::forward<F>(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          task();
        } else {
          state->value.emplace(task());
        }
      } catch (...) {
        state->error = std::current_exception();
      }
      state->mark_ready();
    };
    enqueue(job);
    return Future<R>{this, std::move(state)};
  }

  /// Runs queued tasks on the calling worker thread until `pred()` holds.
  /// Must be called from a worker thread of this executor.
  template <typename Pred>
  void help_until(Pred&& pred) {
    HOURS_EXPECTS(current() == this);
    while (!pred()) {
      if (detail::Job* job = find_work(current_worker_index())) {
        execute(job);
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Blocks until every submitted task (including spawned children) has
  /// finished. From a worker thread it helps instead of blocking, and the
  /// tasks on the calling thread's own stack are excluded — "idle" there
  /// means nothing outstanding beyond the caller itself.
  void wait_idle();

  /// The executor owning the calling worker thread, or nullptr.
  [[nodiscard]] static Executor* current() noexcept;

 private:
  template <typename T>
  friend class Future;

  struct Worker {
    WorkDeque<detail::Job> deque;
    std::uint64_t steal_state = 0;  ///< per-worker victim-selection RNG
  };

  [[nodiscard]] static unsigned current_worker_index() noexcept;

  void enqueue(detail::Job* job);
  detail::Job* find_work(unsigned self);
  void execute(detail::Job* job);
  void worker_loop(unsigned index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mutex_;
  std::deque<detail::Job*> inject_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::uint64_t> wake_epoch_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> outstanding_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

template <typename T>
T Future<T>::get() {
  HOURS_EXPECTS(state_ != nullptr);
  if (exec_ != nullptr && Executor::current() == exec_) {
    exec_->help_until([s = state_.get()] { return s->is_ready(); });
  } else {
    state_->wait_blocking();
  }
  if (state_->error) std::rethrow_exception(state_->error);
  if constexpr (!std::is_void_v<T>) {
    return std::move(*state_->value);
  }
}

}  // namespace hours::jobs
