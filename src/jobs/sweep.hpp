// Deterministic parallel sweeps over the work-stealing executor.
//
// The determinism contract that makes the fuzz/bench fleet thread-count
// invariant:
//   1. every task's randomness comes from task_rng(sweep_seed, task_index)
//      — a pure function of the sweep seed and the task's position, never
//      of the worker that ran it or of wall-clock time;
//   2. tasks share no mutable state (each writes only its own result slot);
//   3. results merge in task-index order.
// Under those three rules the merged output of sweep() is byte-identical
// at 1, 2, or N worker threads — proven by tests/sweep_determinism_test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "jobs/executor.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace hours::jobs {

/// Independent, reproducible per-task generator: the same
/// (sweep_seed, task_index) always yields the same stream.
[[nodiscard]] inline rng::Xoshiro256 task_rng(std::uint64_t sweep_seed,
                                              std::uint64_t task_index) noexcept {
  return rng::Xoshiro256{rng::mix64(sweep_seed, task_index)};
}

/// Fans `count` independent tasks across `exec` and returns their results
/// in task-index order. `fn(index, rng)` must be invocable concurrently
/// from any worker thread and returns R (default-constructible). The first
/// task exception (lowest index) propagates to the caller after all tasks
/// finished.
template <typename R, typename Fn>
std::vector<R> sweep(Executor& exec, std::uint64_t sweep_seed, std::size_t count, Fn&& fn) {
  std::vector<R> results(count);
  std::vector<Future<void>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pending.push_back(exec.submit([&results, &fn, sweep_seed, i] {
      rng::Xoshiro256 rng = task_rng(sweep_seed, i);
      results[i] = fn(i, rng);
    }));
  }
  // Wait for *every* task before propagating anything: tasks reference
  // `results` and `fn`, so unwinding while stragglers still run would leave
  // them with dangling captures. The lowest failing index wins.
  std::exception_ptr first_error;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace hours::jobs
