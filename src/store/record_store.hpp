// The data plane of the lookup service.
//
// An open service hierarchy exists to serve *answers* — DNS resource
// records, LDAP entries, PKI certificates. Each node holds the records for
// the portion of the name space it manages (Section 2's naming model); a
// query is useful only if it reaches the node holding the answer, which is
// precisely the accessibility property HOURS protects.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "naming/name.hpp"

namespace hours::store {

/// One record, shaped loosely after a DNS RR: a type tag, an opaque value
/// and a time-to-live governing client-side caching (Section 7).
struct Record {
  std::string type;   ///< e.g. "A", "CERT", "ENTRY"
  std::string value;
  std::uint64_t ttl = 3600;

  friend bool operator==(const Record&, const Record&) = default;
};

class RecordStore {
 public:
  /// Adds a record under `name` (the owning node's name).
  void add(const naming::Name& name, Record record);

  /// Removes all records of `type` under `name`; returns how many.
  std::size_t remove(const naming::Name& name, const std::string& type);

  /// All records held at `name` (empty if none).
  [[nodiscard]] const std::vector<Record>& records_at(const naming::Name& name) const;

  /// Records of one type at `name`.
  [[nodiscard]] std::vector<Record> records_at(const naming::Name& name,
                                               const std::string& type) const;

  [[nodiscard]] std::size_t total_records() const noexcept { return total_; }

  /// Every (name, records) pair in name order, for snapshot serialization.
  [[nodiscard]] const std::map<naming::Name, std::vector<Record>>& all() const noexcept {
    return by_name_;
  }

 private:
  std::map<naming::Name, std::vector<Record>> by_name_;
  std::size_t total_ = 0;
  static const std::vector<Record> kEmpty;
};

}  // namespace hours::store
