#include "store/record_store.hpp"

#include <algorithm>

namespace hours::store {

const std::vector<Record> RecordStore::kEmpty{};

void RecordStore::add(const naming::Name& name, Record record) {
  by_name_[name].push_back(std::move(record));
  ++total_;
}

std::size_t RecordStore::remove(const naming::Name& name, const std::string& type) {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return 0;
  auto& records = it->second;
  const auto removed =
      static_cast<std::size_t>(std::erase_if(records, [&](const Record& r) { return r.type == type; }));
  total_ -= removed;
  if (records.empty()) by_name_.erase(it);
  return removed;
}

const std::vector<Record>& RecordStore::records_at(const naming::Name& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kEmpty : it->second;
}

std::vector<Record> RecordStore::records_at(const naming::Name& name,
                                            const std::string& type) const {
  std::vector<Record> out;
  for (const auto& r : records_at(name)) {
    if (r.type == type) out.push_back(r);
  }
  return out;
}

}  // namespace hours::store
