// Hierarchical names for the open service hierarchy (Section 2).
//
// Names mirror DNS presentation order: the most specific label first and the
// root last, e.g. "www.cs.ucla" where "ucla" is a level-1 zone under the
// (implicit, empty-named) root. Each node in the hierarchy manages the
// portion of the name space rooted at its own name and may delegate
// sub-portions to children.
#pragma once

#include <compare>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace hours::naming {

/// An absolute hierarchical name: a sequence of labels from root (index 0)
/// down to the most specific label. The root itself is the empty sequence.
class Name {
 public:
  /// The root name (empty label sequence).
  Name() = default;

  /// Parses a dotted name in DNS presentation order ("leaf.mid.top").
  /// Empty string parses to the root. Labels must be non-empty and must not
  /// contain dots.
  static util::Result<Name> parse(std::string_view text);

  /// Builds from root-first labels.
  static Name from_labels(std::vector<std::string> root_first_labels);

  auto operator<=>(const Name&) const = default;

  /// Number of labels; 0 for the root. Equals the node's level in the tree.
  [[nodiscard]] std::size_t depth() const noexcept { return labels_.size(); }
  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }

  /// Root-first labels.
  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// Label at `level` (1-based: label(1) is the top-most label).
  [[nodiscard]] const std::string& label(std::size_t level) const;

  /// The name one level up; precondition: !is_root().
  [[nodiscard]] Name parent() const;

  /// The ancestor at `level` (0 = root, depth() = *this).
  [[nodiscard]] Name ancestor_at(std::size_t level) const;

  /// This name extended with one more specific label.
  [[nodiscard]] Name child(std::string_view label) const;

  /// True if *this is `other` or an ancestor of `other`.
  [[nodiscard]] bool is_prefix_of(const Name& other) const noexcept;

  /// True if *this is a strict ancestor of `other`.
  [[nodiscard]] bool is_ancestor_of(const Name& other) const noexcept {
    return depth() < other.depth() && is_prefix_of(other);
  }

  /// DNS presentation order ("leaf.mid.top"); "." for the root.
  [[nodiscard]] std::string to_string() const;

 private:
  explicit Name(std::vector<std::string> labels) : labels_(std::move(labels)) {}

  std::vector<std::string> labels_;  // root-first
};

}  // namespace hours::naming
