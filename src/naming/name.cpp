#include "naming/name.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace hours::naming {

util::Result<Name> Name::parse(std::string_view text) {
  if (text.empty() || text == ".") return Name{};
  auto parts = util::split(text, '.');
  for (const auto& part : parts) {
    if (part.empty()) {
      return util::Error{util::Error::Code::kInvalidArgument,
                         "empty label in name: '" + std::string{text} + "'"};
    }
  }
  std::reverse(parts.begin(), parts.end());  // presentation order is leaf-first
  return Name{std::move(parts)};
}

Name Name::from_labels(std::vector<std::string> root_first_labels) {
  return Name{std::move(root_first_labels)};
}

const std::string& Name::label(std::size_t level) const {
  HOURS_EXPECTS(level >= 1 && level <= labels_.size());
  return labels_[level - 1];
}

Name Name::parent() const {
  HOURS_EXPECTS(!is_root());
  std::vector<std::string> up{labels_.begin(), labels_.end() - 1};
  return Name{std::move(up)};
}

Name Name::ancestor_at(std::size_t level) const {
  HOURS_EXPECTS(level <= depth());
  std::vector<std::string> up{labels_.begin(), labels_.begin() + static_cast<std::ptrdiff_t>(level)};
  return Name{std::move(up)};
}

Name Name::child(std::string_view label) const {
  HOURS_EXPECTS(!label.empty());
  std::vector<std::string> down = labels_;
  down.emplace_back(label);
  return Name{std::move(down)};
}

bool Name::is_prefix_of(const Name& other) const noexcept {
  if (depth() > other.depth()) return false;
  return std::equal(labels_.begin(), labels_.end(), other.labels_.begin());
}

std::string Name::to_string() const {
  if (is_root()) return ".";
  std::vector<std::string> leaf_first{labels_.rbegin(), labels_.rend()};
  return util::join(leaf_first, '.');
}

}  // namespace hours::naming
