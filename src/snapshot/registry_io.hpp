// Registry <-> snapshot JSON conversion.
//
// Counters serialize as exact u64s. Histograms serialize as their per-value
// bins plus the total count — the integer-exact representation — rather
// than any derived floating statistic: restoring replays the bins through
// Histogram::add(), which reconstructs the moment accumulators in a fixed
// (ascending-value) order. The derived mean can therefore differ from the
// original in its last bits, but every quantity a snapshot is compared on
// (bins, counts) is exact, and the serialized form itself is byte-stable.
#pragma once

#include <string>

#include "snapshot/json.hpp"
#include "trace/registry.hpp"

namespace hours::snapshot {

[[nodiscard]] Json registry_to_json(const trace::Registry& registry);

/// Resets `registry` and applies the saved values. Existing handles stay
/// valid (names persist across Registry::reset()). Returns "" on success.
[[nodiscard]] std::string registry_from_json(trace::Registry& registry, const Json& state);

}  // namespace hours::snapshot
