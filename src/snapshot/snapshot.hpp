// Snapshot document shell: versioning, structural validation, file IO.
//
// A snapshot is one JSON document:
//
//   {
//     "magic": "hours-snapshot",
//     "version": 1,
//     "sections": {
//       "sim":   { "now": T, "next_id": N, "events": [[at, id, kind, args...], ...] },
//       "ring":  { ... },       // one object per registered Participant
//       "faults": { ... },
//       ...
//     }
//   }
//
// Version policy: `version` is bumped whenever an existing field changes
// meaning or layout (adding a new optional field or a new event kind at the
// end of a range does not bump it). Readers reject any version greater
// than their own — snapshots are forward-compatible to read, never to
// write. See docs/PROTOCOL.md appendix C for the full field catalogue.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "snapshot/json.hpp"

namespace hours::snapshot {

inline constexpr std::string_view kSnapshotMagic = "hours-snapshot";
inline constexpr std::uint64_t kSnapshotVersion = 1;

/// Fresh document with magic/version set and an empty sections object.
[[nodiscard]] Json make_document();

/// Structural validation: magic, supported version, sections an object of
/// objects, and — when a "sim" section is present — a well-formed event
/// list (u64 triples-plus-args, registered kinds, ids below next_id).
/// Returns "" when valid, else the first problem found.
[[nodiscard]] std::string validate_document(const Json& doc);

/// Writes `doc` to `path` (atomic enough for our purposes: whole-file
/// write). Returns "" on success.
[[nodiscard]] std::string write_file(const std::string& path, const Json& doc);

/// Reads and parses a snapshot file; does not validate beyond JSON syntax.
[[nodiscard]] std::string read_file(const std::string& path, Json& out);

}  // namespace hours::snapshot
