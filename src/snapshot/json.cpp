#include "snapshot/json.hpp"

#include <cctype>
#include <cstdio>

namespace hours::snapshot {

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = fields();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Json& Json::operator[](std::string_view key) {
  auto& obj = std::get<Object>(value_);
  const auto it = obj.find(key);
  if (it != obj.end()) return it->second;
  return obj.emplace(std::string(key), Json{}).first->second;
}

namespace {

void write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void pad(std::string& out, int indent) { out.append(static_cast<std::size_t>(indent), ' '); }

}  // namespace

void Json::write(std::string& out, int indent) const {
  if (is_u64()) {
    out += std::to_string(as_u64());
    return;
  }
  if (is_string()) {
    write_string(out, as_string());
    return;
  }
  if (is_array()) {
    const auto& arr = items();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    // Arrays of scalars stay on one line (event args, bins, id lists);
    // arrays holding any composite break one element per line.
    bool flat = true;
    for (const auto& v : arr) {
      if (v.is_array() || v.is_object()) flat = false;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (flat) {
        if (i != 0) out += ", ";
      } else {
        out += i == 0 ? "\n" : ",\n";
        pad(out, indent + 2);
      }
      arr[i].write(out, indent + 2);
    }
    if (!flat) {
      out += '\n';
      pad(out, indent);
    }
    out += ']';
    return;
  }
  const auto& obj = fields();
  if (obj.empty()) {
    out += "{}";
    return;
  }
  out += '{';
  bool first = true;
  for (const auto& [key, value] : obj) {
    out += first ? "\n" : ",\n";
    first = false;
    pad(out, indent + 2);
    write_string(out, key);
    out += ": ";
    value.write(out, indent + 2);
  }
  out += '\n';
  pad(out, indent);
  out += '}';
}

std::string Json::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

// -- parser ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(Json& out, std::string* error) {
    if (!value(out)) {
      fill(error);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing content";
      fill(error);
      return false;
    }
    return true;
  }

 private:
  void fill(std::string* error) const {
    if (error != nullptr) *error = error_ + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool expect(char c) {
    if (at_end() || text_[pos_] != c) {
      error_ = std::string("expected '") + c + "'";
      return false;
    }
    ++pos_;
    return true;
  }

  bool value(Json& out) {
    skip_ws();
    if (at_end()) {
      error_ = "unexpected end of input";
      return false;
    }
    const char c = peek();
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      std::string s;
      if (!string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) return number(out);
    error_ = "unsupported value (snapshot JSON holds only u64 integers, "
             "strings, arrays, and objects)";
    return false;
  }

  bool number(Json& out) {
    std::uint64_t v = 0;
    const std::size_t start = pos_;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      const std::uint64_t digit = static_cast<std::uint64_t>(peek() - '0');
      if (v > (UINT64_MAX - digit) / 10) {
        error_ = "integer overflows u64";
        return false;
      }
      v = v * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) {
      error_ = "expected digits";
      return false;
    }
    if (!at_end() && (peek() == '.' || peek() == 'e' || peek() == 'E')) {
      error_ = "fractional numbers are not part of the snapshot format";
      return false;
    }
    out = Json(v);
    return true;
  }

  bool string(std::string& out) {
    if (!expect('"')) return false;
    while (true) {
      if (at_end()) {
        error_ = "unterminated string";
        return false;
      }
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) {
        error_ = "unterminated escape";
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            error_ = "truncated \\u escape";
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              error_ = "invalid \\u escape";
              return false;
            }
          }
          if (code > 0xFF) {
            // The writer only escapes control characters; anything larger
            // never appears in a well-formed snapshot.
            error_ = "\\u escape beyond latin-1 unsupported";
            return false;
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          error_ = "unknown escape";
          return false;
      }
    }
  }

  bool array(Json& out) {
    if (!expect('[')) return false;
    Json::Array arr;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      out = Json(std::move(arr));
      return true;
    }
    while (true) {
      Json element;
      if (!value(element)) return false;
      arr.push_back(std::move(element));
      skip_ws();
      if (!at_end() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!expect(']')) return false;
      out = Json(std::move(arr));
      return true;
    }
  }

  bool object(Json& out) {
    if (!expect('{')) return false;
    Json::Object obj;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      out = Json(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      Json element;
      if (!value(element)) return false;
      if (!obj.emplace(std::move(key), std::move(element)).second) {
        error_ = "duplicate object key";
        return false;
      }
      skip_ws();
      if (!at_end() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!expect('}')) return false;
      out = Json(std::move(obj));
      return true;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(std::string_view text, Json& out, std::string* error) {
  return Parser(text).parse(out, error);
}

}  // namespace hours::snapshot
