// Described events: the data form of a scheduled continuation.
//
// The discrete-event engine historically queued opaque std::function
// closures, which made the event queue unserializable. Every protocol event
// is now *described*: a (kind, args) pair from the closed registry in
// event_kinds.hpp, paired at schedule time with the closure that executes
// it. Crucially the closure is always derived from the description (the
// protocols route both the live path and the restored path through one
// continuation dispatcher), so restoring a snapshot cannot behave
// differently from never having stopped.
//
// kind 0 (kOpaque) marks a legacy closure with no data form — e.g. a test
// harness callback. Opaque events execute normally but make the simulation
// unsnapshottable while queued; Snapshotter::save() fails loudly listing
// them rather than writing a snapshot that silently loses work.
#pragma once

#include <cstdint>
#include <vector>

namespace hours::snapshot {

struct Described {
  std::uint32_t kind = 0;
  std::vector<std::uint64_t> args;

  bool operator==(const Described& other) const = default;
};

}  // namespace hours::snapshot
