// Minimal deterministic JSON value for snapshot files.
//
// Snapshots need a self-describing, versionable, diff-friendly format; they
// do not need the full JSON data model. This value type supports exactly
// four shapes — unsigned 64-bit integers, strings, arrays, and objects with
// sorted keys — and its writer is byte-deterministic: the same value always
// serializes to the same text, so snapshot equality can be checked with
// string comparison (the equivalence oracle depends on this).
//
// Floating-point state is stored as IEEE-754 bit patterns in u64 fields
// (see bits_from_double below): printing and re-parsing decimal doubles is
// a classic source of silent round-trip drift, and a snapshot must restore
// *exactly* the bits the run was using.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hours::snapshot {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : value_(std::uint64_t{0}) {}
  Json(std::uint64_t v) : value_(v) {}  // NOLINT(google-explicit-constructor)
  Json(std::string s) : value_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT
  Json(Array a) : value_(std::move(a)) {}  // NOLINT
  Json(Object o) : value_(std::move(o)) {}  // NOLINT

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] bool is_u64() const noexcept {
    return std::holds_alternative<std::uint64_t>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  // Accessors assert the active alternative (programming error otherwise).
  [[nodiscard]] std::uint64_t as_u64() const { return std::get<std::uint64_t>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const Array& items() const { return std::get<Array>(value_); }
  [[nodiscard]] Array& items() { return std::get<Array>(value_); }
  [[nodiscard]] const Object& fields() const { return std::get<Object>(value_); }
  [[nodiscard]] Object& fields() { return std::get<Object>(value_); }

  /// Object field lookup; null when absent or when this is not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Object field insertion/access (creates the field, default 0).
  Json& operator[](std::string_view key);

  /// Array append.
  void push(Json v) { std::get<Array>(value_).push_back(std::move(v)); }

  bool operator==(const Json& other) const = default;

  /// Deterministic pretty-printed serialization (2-space indent, sorted
  /// object keys, '\n'-terminated).
  [[nodiscard]] std::string dump() const;

 private:
  void write(std::string& out, int indent) const;

  std::variant<std::uint64_t, std::string, Array, Object> value_;
};

/// Parses text produced by Json::dump() (and any JSON restricted to the
/// same subset: non-negative integers, strings, arrays, objects). Returns
/// true on success; on failure fills `error` (when non-null) with a
/// position-annotated reason.
[[nodiscard]] bool parse_json(std::string_view text, Json& out, std::string* error = nullptr);

/// Exact double <-> u64 bridges for storing floating-point state.
[[nodiscard]] inline std::uint64_t bits_from_double(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}
[[nodiscard]] inline double double_from_bits(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

}  // namespace hours::snapshot
