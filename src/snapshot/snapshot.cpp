#include "snapshot/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "snapshot/event_kinds.hpp"

namespace hours::snapshot {

Json make_document() {
  Json doc = Json::object();
  doc["magic"] = Json(std::string(kSnapshotMagic));
  doc["version"] = Json(kSnapshotVersion);
  doc["sections"] = Json::object();
  return doc;
}

namespace {

std::string validate_sim_section(const Json& sim) {
  const Json* now = sim.find("now");
  const Json* next_id = sim.find("next_id");
  const Json* events = sim.find("events");
  if (now == nullptr || !now->is_u64()) return "sim.now missing or not a u64";
  if (next_id == nullptr || !next_id->is_u64()) return "sim.next_id missing or not a u64";
  if (events == nullptr || !events->is_array()) return "sim.events missing or not an array";
  for (std::size_t i = 0; i < events->items().size(); ++i) {
    const Json& event = events->items()[i];
    const std::string where = "sim.events[" + std::to_string(i) + "]";
    if (!event.is_array() || event.items().size() < 3) {
      return where + " is not an [at, id, kind, args...] array";
    }
    for (const Json& field : event.items()) {
      if (!field.is_u64()) return where + " holds a non-u64 element";
    }
    const std::uint64_t at = event.items()[0].as_u64();
    const std::uint64_t id = event.items()[1].as_u64();
    const std::uint64_t kind = event.items()[2].as_u64();
    if (at < now->as_u64()) return where + " is scheduled in the past";
    if (id == 0 || id >= next_id->as_u64()) return where + " id outside [1, next_id)";
    if (kind > UINT32_MAX || event_kind_name(static_cast<std::uint32_t>(kind)).empty()) {
      return where + " has unregistered kind " + std::to_string(kind);
    }
  }
  return "";
}

}  // namespace

std::string validate_document(const Json& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  const Json* magic = doc.find("magic");
  if (magic == nullptr || !magic->is_string() || magic->as_string() != kSnapshotMagic) {
    return "bad or missing magic (want \"" + std::string(kSnapshotMagic) + "\")";
  }
  const Json* version = doc.find("version");
  if (version == nullptr || !version->is_u64()) return "bad or missing version";
  if (version->as_u64() == 0 || version->as_u64() > kSnapshotVersion) {
    return "unsupported snapshot version " + std::to_string(version->as_u64()) +
           " (reader supports up to " + std::to_string(kSnapshotVersion) + ")";
  }
  const Json* sections = doc.find("sections");
  if (sections == nullptr || !sections->is_object()) return "bad or missing sections";
  for (const auto& [name, body] : sections->fields()) {
    if (!body.is_object()) return "section \"" + name + "\" is not an object";
  }
  if (const Json* sim = sections->find("sim"); sim != nullptr) {
    return validate_sim_section(*sim);
  }
  return "";
}

std::string write_file(const std::string& path, const Json& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "cannot open " + path + " for writing";
  out << doc.dump();
  out.flush();
  if (!out) return "write to " + path + " failed";
  return "";
}

std::string read_file(const std::string& path, Json& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open " + path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!parse_json(buffer.str(), out, &error)) return path + ": " + error;
  return "";
}

}  // namespace hours::snapshot
