#include "snapshot/registry_io.hpp"

namespace hours::snapshot {

Json registry_to_json(const trace::Registry& registry) {
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& name : registry.counter_names()) {
    counters[name] = Json(registry.counter_value(name));
  }
  Json histograms = Json::object();
  for (const auto& name : registry.histogram_names()) {
    // histogram() is non-const lookup-or-create; names() guarantees existence.
    const auto& h = const_cast<trace::Registry&>(registry).histogram(name);
    Json bins = Json::array();
    for (const auto count : h.bins()) bins.push(Json(count));
    Json entry = Json::object();
    entry["bins"] = std::move(bins);
    entry["total"] = Json(h.total_count());
    histograms[name] = std::move(entry);
  }
  out["counters"] = std::move(counters);
  out["histograms"] = std::move(histograms);
  return out;
}

std::string registry_from_json(trace::Registry& registry, const Json& state) {
  const Json* counters = state.find("counters");
  const Json* histograms = state.find("histograms");
  if (counters == nullptr || !counters->is_object()) return "registry.counters missing";
  if (histograms == nullptr || !histograms->is_object()) return "registry.histograms missing";
  registry.reset();
  for (const auto& [name, value] : counters->fields()) {
    if (!value.is_u64()) return "registry counter \"" + name + "\" not a u64";
    registry.set_counter(name, value.as_u64());
  }
  for (const auto& [name, entry] : histograms->fields()) {
    const Json* bins = entry.find("bins");
    const Json* total = entry.find("total");
    if (bins == nullptr || !bins->is_array() || total == nullptr || !total->is_u64()) {
      return "registry histogram \"" + name + "\" malformed";
    }
    auto& h = registry.histogram(name);
    std::uint64_t restored = 0;
    for (std::size_t value = 0; value < bins->items().size(); ++value) {
      const Json& count = bins->items()[value];
      if (!count.is_u64()) return "registry histogram \"" + name + "\" bin not a u64";
      if (count.as_u64() == 0) continue;
      h.add(value, count.as_u64());
      restored += count.as_u64();
    }
    if (restored != total->as_u64()) {
      return "registry histogram \"" + name + "\" bins disagree with total";
    }
  }
  return "";
}

}  // namespace hours::snapshot
