// Snapshot visitor interface: every stateful subsystem registers one.
//
// A Participant owns one named section of the snapshot document plus a
// range of described-event kinds (event_kinds.hpp). Snapshotter (sim layer)
// drives the protocol: save() collects each participant's section and the
// simulator's event queue; restore() hands each section back, then asks
// participants to rebuild the executable closure for every queued event.
//
// Error handling is by string: "" means success, anything else is a
// human-readable reason (surfaced verbatim by save()/restore() callers).
// Snapshots are a robustness tool — a failed save/restore must explain
// itself, never crash or half-apply.
#pragma once

#include <functional>
#include <string>

#include "snapshot/described.hpp"
#include "snapshot/json.hpp"

namespace hours::snapshot {

class Participant {
 public:
  virtual ~Participant() = default;

  /// Unique section key in the snapshot document ("ring", "faults", ...).
  [[nodiscard]] virtual std::string section() const = 0;

  /// Serializes this subsystem's complete state. `error` is filled (and the
  /// result discarded) when the state is not snapshottable right now.
  [[nodiscard]] virtual Json save_state(std::string& error) const = 0;

  /// Applies a previously saved section. Returns "" on success.
  [[nodiscard]] virtual std::string restore_state(const Json& state) = 0;

  /// Rebuilds the closure for a described event this participant owns;
  /// null when `desc.kind` is outside its range (the Snapshotter then asks
  /// the next participant).
  [[nodiscard]] virtual std::function<void()> rebuild_event(const Described& desc) = 0;
};

}  // namespace hours::snapshot
