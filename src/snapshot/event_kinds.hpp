// Closed registry of described-event kinds (see described.hpp).
//
// Kinds are grouped by owning subsystem in 0x100 ranges; a subsystem's
// Participant claims its range in rebuild_event(). The numeric values are
// part of the snapshot wire format — never renumber an existing kind, add
// new ones at the end of the owning range and bump kSnapshotVersion
// (snapshot.hpp) when semantics change. The arg vector layout for every
// kind is specified in docs/PROTOCOL.md's snapshot appendix.
#pragma once

#include <cstdint>
#include <string_view>

namespace hours::snapshot {

inline constexpr std::uint32_t kOpaque = 0;  ///< legacy closure, unserializable

// -- transport (sim/transport.hpp) ----------------------------------------------------
inline constexpr std::uint32_t kTransportDelivery = 0x100;    ///< [to, from, token, inc, is_ack, payload...]
inline constexpr std::uint32_t kTransportAckTimeout = 0x101;  ///< [token]

// -- ring protocol (sim/ring_protocol.cpp) --------------------------------------------
inline constexpr std::uint32_t kRingProbeTimer = 0x200;       ///< [i]
inline constexpr std::uint32_t kRingCwProbeAck = 0x201;       ///< [i]
inline constexpr std::uint32_t kRingCwProbeTimeout = 0x202;   ///< [i, succ]
inline constexpr std::uint32_t kRingCcwProbeAck = 0x203;      ///< [i]
inline constexpr std::uint32_t kRingCcwProbeTimeout = 0x204;  ///< [i, ccw]
inline constexpr std::uint32_t kRingRecoveredAck = 0x205;     ///< [i, peer]
inline constexpr std::uint32_t kRingAdvanceAck = 0x206;       ///< [i, candidate]
inline constexpr std::uint32_t kRingAdvanceTimeout = 0x207;   ///< [i, candidate, remaining...]
inline constexpr std::uint32_t kRingCcwSilenceCheck = 0x208;  ///< [i]
inline constexpr std::uint32_t kRingRepairTimeout = 0x209;    ///< [at, origin, rid, tried, remaining...]
inline constexpr std::uint32_t kRingQueryStart = 0x20A;       ///< [from, msg...]
inline constexpr std::uint32_t kRingQueryHopTimeout = 0x20B;  ///< [at, tried, msg..., remaining...]

// -- hierarchy protocol (sim/hierarchy_protocol.cpp) ----------------------------------
inline constexpr std::uint32_t kHierQueryStart = 0x300;      ///< [start, msg...]
inline constexpr std::uint32_t kHierAttemptTimeout = 0x301;  ///< [at, tried, msg..., remaining...]

// -- fault injector (sim/fault_injector.cpp) ------------------------------------------
inline constexpr std::uint32_t kFaultAction = 0x400;  ///< [index into build_schedule()]

/// Stable lowercase name for diagnostics and snapshot validation; empty
/// view when `kind` is not in the registry (kOpaque included: an opaque
/// event has no wire form, so its appearance in a snapshot is invalid).
[[nodiscard]] constexpr std::string_view event_kind_name(std::uint32_t kind) noexcept {
  switch (kind) {
    case kTransportDelivery: return "transport_delivery";
    case kTransportAckTimeout: return "transport_ack_timeout";
    case kRingProbeTimer: return "ring_probe_timer";
    case kRingCwProbeAck: return "ring_cw_probe_ack";
    case kRingCwProbeTimeout: return "ring_cw_probe_timeout";
    case kRingCcwProbeAck: return "ring_ccw_probe_ack";
    case kRingCcwProbeTimeout: return "ring_ccw_probe_timeout";
    case kRingRecoveredAck: return "ring_recovered_ack";
    case kRingAdvanceAck: return "ring_advance_ack";
    case kRingAdvanceTimeout: return "ring_advance_timeout";
    case kRingCcwSilenceCheck: return "ring_ccw_silence_check";
    case kRingRepairTimeout: return "ring_repair_timeout";
    case kRingQueryStart: return "ring_query_start";
    case kRingQueryHopTimeout: return "ring_query_hop_timeout";
    case kHierQueryStart: return "hier_query_start";
    case kHierAttemptTimeout: return "hier_attempt_timeout";
    case kFaultAction: return "fault_action";
    default: return {};
  }
}

}  // namespace hours::snapshot
