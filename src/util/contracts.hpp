// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6/I.8, GSL Expects/Ensures). Violations indicate programmer error and
// terminate with a diagnostic; they are never used for recoverable errors.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hours::util {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "[hours] %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace hours::util

#define HOURS_EXPECTS(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                                 \
          : ::hours::util::contract_violation("precondition", #cond, __FILE__, __LINE__))

#define HOURS_ENSURES(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                                 \
          : ::hours::util::contract_violation("postcondition", #cond, __FILE__, __LINE__))

#define HOURS_ASSERT(cond)                                                       \
  ((cond) ? static_cast<void>(0)                                                 \
          : ::hours::util::contract_violation("invariant", #cond, __FILE__, __LINE__))
