// Minimal expected-style result type for recoverable errors (E.ref: use
// exceptions only for truly exceptional conditions; routing failures are a
// normal outcome in this domain, so they travel as values).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/contracts.hpp"

namespace hours::util {

/// Error payload: a stable code plus a human-readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kNotFound,
    kUnreachable,   ///< routing could not reach the destination
    kHopLimit,      ///< forwarding exceeded its loop-protection budget
    kDead,          ///< the addressed node is out of service
    kDropped,       ///< swallowed by a compromised node (Section 5.3)
    kInternal,
  };

  Code code = Code::kInternal;
  std::string message;
};

/// Human-readable name for an error code.
const char* to_string(Error::Code code);

/// Result<T> holds either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}       // NOLINT(google-explicit-constructor)
  Result(Error error) : rep_(std::move(error)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    HOURS_EXPECTS(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    HOURS_EXPECTS(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    HOURS_EXPECTS(ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] const Error& error() const& {
    HOURS_EXPECTS(!ok());
    return std::get<Error>(rep_);
  }

 private:
  std::variant<T, Error> rep_;
};

}  // namespace hours::util
