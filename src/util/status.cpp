#include "util/status.hpp"

namespace hours::util {

const char* to_string(Error::Code code) {
  switch (code) {
    case Error::Code::kInvalidArgument:
      return "invalid_argument";
    case Error::Code::kNotFound:
      return "not_found";
    case Error::Code::kUnreachable:
      return "unreachable";
    case Error::Code::kHopLimit:
      return "hop_limit";
    case Error::Code::kDead:
      return "dead";
    case Error::Code::kDropped:
      return "dropped";
    case Error::Code::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace hours::util
