// Chunked slab arena: index-addressed object pool with stable addresses.
//
// Storage grows in fixed-size chunks that are never moved or freed until
// clear(), so a T* obtained from operator[] stays valid across further
// allocations — the property the simulator's dispatch loop relies on when
// an executing event schedules new ones. Released slots go on a free list
// and are handed out again with their T intact (not destroyed), so a slot
// whose T owns buffers (e.g. a std::vector) keeps its capacity across
// reuse: steady-state allocation cost is zero.
//
// Indices are dense u32 handles: every index ever returned is < high_water()
// and chunks are allocated lazily, which makes "iterate all slots" a flat
// loop for the cold inspection paths (the caller tags liveness in T).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/contracts.hpp"

namespace hours::util {

template <typename T>
class Slab {
 public:
  /// `chunk_size` slots per chunk; must be a power of two.
  explicit Slab(std::uint32_t chunk_size = 4096) : chunk_size_(chunk_size) {
    HOURS_EXPECTS(chunk_size_ > 0 && (chunk_size_ & (chunk_size_ - 1)) == 0);
    shift_ = 0;
    while ((1U << shift_) != chunk_size_) ++shift_;
  }

  /// Returns a slot index: a recycled one (T as the releaser left it) when
  /// available, otherwise a fresh default-constructed slot.
  std::uint32_t allocate() {
    if (!free_.empty()) {
      const std::uint32_t index = free_.back();
      free_.pop_back();
      ++live_;
      return index;
    }
    const std::uint32_t index = high_water_++;
    if ((index >> shift_) == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(chunk_size_));
    }
    ++live_;
    return index;
  }

  /// Returns `index` to the free list. The T is NOT destroyed or reset —
  /// the caller clears what must not leak into the next user.
  void release(std::uint32_t index) {
    HOURS_EXPECTS(index < high_water_);
    free_.push_back(index);
    --live_;
  }

  [[nodiscard]] T& operator[](std::uint32_t index) {
    HOURS_EXPECTS(index < high_water_);
    return chunks_[index >> shift_][index & (chunk_size_ - 1)];
  }
  [[nodiscard]] const T& operator[](std::uint32_t index) const {
    HOURS_EXPECTS(index < high_water_);
    return chunks_[index >> shift_][index & (chunk_size_ - 1)];
  }

  /// Every index ever allocated is < high_water() — the bound for flat
  /// inspection scans.
  [[nodiscard]] std::uint32_t high_water() const noexcept { return high_water_; }
  [[nodiscard]] std::size_t live() const noexcept { return live_; }

  /// Drops every chunk (and all slot contents).
  void clear() {
    chunks_.clear();
    free_.clear();
    high_water_ = 0;
    live_ = 0;
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t chunk_size_;
  std::uint32_t shift_ = 0;
  std::uint32_t high_water_ = 0;
  std::size_t live_ = 0;
};

}  // namespace hours::util
