// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hours::util {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view input, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, char sep);

/// Lower-cases ASCII characters in place and returns the result.
std::string to_lower(std::string_view input);

/// Formats a byte span as lowercase hex.
std::string hex_encode(const unsigned char* data, std::size_t size);

}  // namespace hours::util
