#include "util/strings.hpp"

#include <cctype>

namespace hours::util {

std::vector<std::string> split(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view input) {
  std::string out{input};
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string hex_encode(const unsigned char* data, std::size_t size) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

}  // namespace hours::util
