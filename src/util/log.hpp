// Tiny leveled logger. Deliberately minimal: benchmarks and simulations are
// hot loops, so logging is compiled around an early level check and all state
// lives in one translation unit (no global construction-order issues).
#pragma once

#include <cstdarg>

namespace hours::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// printf-style logging. Thread-compatible (benchmarks are single-threaded;
/// the event simulator owns all node state on one thread by design).
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace hours::util

#define HOURS_LOG_DEBUG(...) ::hours::util::logf(::hours::util::LogLevel::kDebug, __VA_ARGS__)
#define HOURS_LOG_INFO(...) ::hours::util::logf(::hours::util::LogLevel::kInfo, __VA_ARGS__)
#define HOURS_LOG_WARN(...) ::hours::util::logf(::hours::util::LogLevel::kWarn, __VA_ARGS__)
#define HOURS_LOG_ERROR(...) ::hours::util::logf(::hours::util::LogLevel::kError, __VA_ARGS__)
