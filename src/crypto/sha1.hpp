// SHA-1 implemented from scratch per RFC 3174 / FIPS 180-1.
//
// The paper derives each node's overlay identifier by hashing its name with a
// "publicly known hash function such as SHA-1" (Section 3.2). No external
// crypto library is assumed, so we carry our own implementation, verified
// against the RFC test vectors in tests/crypto_test.cpp.
//
// SHA-1 is used here purely as the paper's public name->ID map; it is not a
// security boundary of this codebase.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hours::crypto {

/// A 20-byte SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.update(data, size);
///   Sha1Digest d = h.finish();
///
/// `finish()` may be called exactly once; the object is then exhausted.
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  /// Re-initializes to the empty-message state.
  void reset() noexcept;

  /// Absorbs `size` bytes.
  void update(const void* data, std::size_t size) noexcept;
  void update(std::string_view text) noexcept { update(text.data(), text.size()); }

  /// Pads, finalizes and returns the digest.
  [[nodiscard]] Sha1Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

/// One-shot convenience: SHA-1 of `text`.
[[nodiscard]] Sha1Digest sha1(std::string_view text) noexcept;

/// Digest as lowercase hex (for tests and diagnostics).
[[nodiscard]] std::string to_hex(const Sha1Digest& digest);

}  // namespace hours::crypto
