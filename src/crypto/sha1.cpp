#include "crypto/sha1.hpp"

#include <cstring>

#include "util/strings.hpp"

namespace hours::crypto {

namespace {

constexpr std::uint32_t rotl(std::uint32_t value, unsigned bits) noexcept {
  return (value << bits) | (value >> (32U - bits));
}

}  // namespace

void Sha1::reset() noexcept {
  state_ = {0x67452301U, 0xEFCDAB89U, 0x98BADCFEU, 0x10325476U, 0xC3D2E1F0U};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int t = 0; t < 80; ++t) {
    std::uint32_t f = 0;
    std::uint32_t k = 0;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999U;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1U;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCU;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6U;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + w[t] + k;
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  total_bytes_ += size;

  if (buffered_ != 0) {
    const std::size_t take = std::min(size, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    size -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }

  while (size >= 64) {
    process_block(bytes);
    bytes += 64;
    size -= 64;
  }

  if (size != 0) {
    std::memcpy(buffer_.data(), bytes, size);
    buffered_ = size;
  }
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;

  // Append 0x80, then zeros, then the 64-bit big-endian bit length.
  const std::uint8_t pad_byte = 0x80;
  update(&pad_byte, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(&zero, 1);
  }

  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  // Bypass update() for the trailing length: total_bytes_ is already corrupted
  // by padding, but only the block contents matter now.
  std::memcpy(buffer_.data() + buffered_, length_bytes, 8);
  process_block(buffer_.data());
  buffered_ = 0;

  Sha1Digest digest{};
  for (int i = 0; i < 5; ++i) {
    digest[static_cast<std::size_t>(i * 4)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    digest[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    digest[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    digest[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return digest;
}

Sha1Digest sha1(std::string_view text) noexcept {
  Sha1 hasher;
  hasher.update(text);
  return hasher.finish();
}

std::string to_hex(const Sha1Digest& digest) {
  return util::hex_encode(digest.data(), digest.size());
}

}  // namespace hours::crypto
