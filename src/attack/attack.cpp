#include "attack/attack.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace hours::attack {

VictimSet plan_random(std::uint32_t ring_size, ids::RingIndex target, std::uint32_t count,
                      rng::Xoshiro256& rng) {
  HOURS_EXPECTS(target < ring_size);
  HOURS_EXPECTS(count < ring_size);  // someone must survive to measure anything

  // Sample `count` distinct indices uniformly from the ring minus the target
  // by drawing from [0, ring_size-1) and skipping over the target's slot.
  std::vector<std::uint8_t> chosen(ring_size, 0);
  VictimSet set;
  set.victims.reserve(count);
  std::uint32_t remaining = count;
  while (remaining > 0) {
    auto candidate = static_cast<ids::RingIndex>(rng.below(ring_size - 1));
    if (candidate >= target) candidate += 1;  // never the target
    if (chosen[candidate] == 0) {
      chosen[candidate] = 1;
      set.victims.push_back(candidate);
      --remaining;
    }
  }
  return set;
}

VictimSet plan_neighbor(std::uint32_t ring_size, ids::RingIndex target, std::uint32_t count) {
  HOURS_EXPECTS(target < ring_size);
  HOURS_EXPECTS(count < ring_size);
  VictimSet set;
  set.victims.reserve(count);
  for (std::uint32_t step = 1; step <= count; ++step) {
    set.victims.push_back(ids::counter_clockwise_step(target, step, ring_size));
  }
  return set;
}

VictimSet plan(Strategy strategy, std::uint32_t ring_size, ids::RingIndex target,
               std::uint32_t count, rng::Xoshiro256& rng) {
  switch (strategy) {
    case Strategy::kRandom:
      return plan_random(ring_size, target, count, rng);
    case Strategy::kNeighbor:
      return plan_neighbor(ring_size, target, count);
  }
  return {};
}

void strike(overlay::Overlay& ov, const VictimSet& set) {
  for (const auto v : set.victims) ov.kill(v);
}

void lift(overlay::Overlay& ov, const VictimSet& set) {
  for (const auto v : set.victims) ov.revive(v);
}

VictimSet strike_hierarchy(hierarchy::HierarchyModel& model, const HierarchyAttack& spec,
                           rng::Xoshiro256& rng) {
  HOURS_EXPECTS(!spec.target.empty());  // the root has no sibling overlay
  overlay::Overlay& ov = model.overlay_of(hierarchy::parent(spec.target));
  VictimSet set = plan(spec.strategy, ov.size(), spec.target.back(), spec.sibling_count, rng);
  strike(ov, set);
  if (spec.include_target) ov.kill(spec.target.back());
  return set;
}

void lift_hierarchy(hierarchy::HierarchyModel& model, const HierarchyAttack& spec,
                    const VictimSet& set) {
  overlay::Overlay& ov = model.overlay_of(hierarchy::parent(spec.target));
  lift(ov, set);
  if (spec.include_target) ov.revive(spec.target.back());
}

}  // namespace hours::attack
