// DoS attack models from Sections 5 and 6.2.
//
// The attacker is topology-aware: the hierarchy is public, and since the
// name->ID hash is public too, the attacker can infer every overlay's
// membership and neighbor relations (Section 5's threat model). What it
// cannot know are the *random* sibling pointers each node drew.
//
// Two outsider strategies are modeled, exactly as simulated in the paper:
//   * random attack   — shut down `count` uniformly chosen siblings of the
//                       target;
//   * neighbor attack — shut down the `count` counter-clockwise neighbors of
//                       the target (the optimal strategy: those are the only
//                       candidates for the target's exit nodes).
//
// Insider attacks (Section 5.3) place compromised nodes that drop or
// mis-route queries instead of failing.
#pragma once

#include <cstdint>
#include <vector>

#include "hierarchy/model.hpp"
#include "overlay/overlay.hpp"
#include "rng/xoshiro256.hpp"

namespace hours::attack {

enum class Strategy : std::uint8_t { kRandom, kNeighbor };

/// A set of ring indices to shut down within one overlay.
struct VictimSet {
  std::vector<ids::RingIndex> victims;
};

/// `count` victims chosen uniformly among the target's siblings (never the
/// target itself; add it explicitly when the scenario calls for it).
[[nodiscard]] VictimSet plan_random(std::uint32_t ring_size, ids::RingIndex target,
                                    std::uint32_t count, rng::Xoshiro256& rng);

/// The `count` counter-clockwise neighbors of the target.
[[nodiscard]] VictimSet plan_neighbor(std::uint32_t ring_size, ids::RingIndex target,
                                      std::uint32_t count);

[[nodiscard]] VictimSet plan(Strategy strategy, std::uint32_t ring_size, ids::RingIndex target,
                             std::uint32_t count, rng::Xoshiro256& rng);

/// Shuts the victims down / brings them back.
void strike(overlay::Overlay& ov, const VictimSet& set);
void lift(overlay::Overlay& ov, const VictimSet& set);

/// A full Section-6.2 scenario: deny the service of `target`'s subtree by
/// shutting down `target` plus `sibling_count` of its siblings.
struct HierarchyAttack {
  hierarchy::NodePath target;   ///< the on-path node of special interest (node T)
  Strategy strategy = Strategy::kNeighbor;
  std::uint32_t sibling_count = 0;
  bool include_target = true;
};

/// Applies the scenario; returns the victims for later lift().
VictimSet strike_hierarchy(hierarchy::HierarchyModel& model, const HierarchyAttack& spec,
                           rng::Xoshiro256& rng);

/// Reverts a strike_hierarchy.
void lift_hierarchy(hierarchy::HierarchyModel& model, const HierarchyAttack& spec,
                    const VictimSet& set);

}  // namespace hours::attack
