// The circular identifier space of Section 3.2.
//
// Each node's identifier is the SHA-1 digest of its name, interpreted as a
// 160-bit unsigned integer on a circle. Overlay positions (indices) are
// derived by the parent sorting its children's identifiers and walking the
// circle clockwise; all per-hop routing decisions then operate on *index*
// distance (see ids/ring.hpp), which respects the identifier ordering.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/sha1.hpp"

namespace hours::ids {

/// A point on the 160-bit circular identifier space.
///
/// Stored big-endian-most-significant-first so lexicographic comparison of
/// the limbs equals numeric comparison.
class Identifier {
 public:
  static constexpr std::size_t kBits = 160;
  static constexpr std::size_t kLimbs = 5;  // 5 x 32-bit limbs

  constexpr Identifier() noexcept = default;

  /// Builds an identifier from a SHA-1 digest.
  explicit Identifier(const crypto::Sha1Digest& digest) noexcept;

  /// Hashes `name` with SHA-1 — the paper's public name->ID map.
  static Identifier from_name(std::string_view name) noexcept;

  /// Builds from a 64-bit value (low bits); convenient in tests.
  static Identifier from_uint64(std::uint64_t value) noexcept;

  auto operator<=>(const Identifier&) const noexcept = default;

  /// Clockwise distance from *this to `other` on the circle, truncated to the
  /// top 64 bits (sufficient for ordering/tie-breaking decisions).
  [[nodiscard]] std::uint64_t clockwise_distance_top64(const Identifier& other) const noexcept;

  /// Lowercase hex rendering.
  [[nodiscard]] std::string to_hex() const;

  /// First 64 bits, useful as a deterministic seed component.
  [[nodiscard]] std::uint64_t top64() const noexcept {
    return (static_cast<std::uint64_t>(limbs_[0]) << 32) | limbs_[1];
  }

 private:
  std::array<std::uint32_t, kLimbs> limbs_{};  // most significant first
};

}  // namespace hours::ids
