// Index-ring arithmetic for overlays (Section 3.2).
//
// Within an overlay of N nodes the parent assigns each child an index in
// [0, N). All routing-table probabilities and greedy decisions are expressed
// in *clockwise index distance* d_x(i, j) = (j - i) mod N.
#pragma once

#include <cstdint>

#include "util/contracts.hpp"

namespace hours::ids {

/// Index of a node within its overlay ring.
using RingIndex = std::uint32_t;

/// Clockwise index distance from `from` to `to` on a ring of `size` nodes.
[[nodiscard]] constexpr std::uint32_t clockwise_distance(RingIndex from, RingIndex to,
                                                         std::uint32_t size) noexcept {
  return (to >= from) ? (to - from) : (size - from + to);
}

/// Counter-clockwise index distance from `from` to `to`.
[[nodiscard]] constexpr std::uint32_t counter_clockwise_distance(RingIndex from, RingIndex to,
                                                                 std::uint32_t size) noexcept {
  return clockwise_distance(to, from, size);
}

/// The index `steps` positions clockwise of `from`.
[[nodiscard]] constexpr RingIndex clockwise_step(RingIndex from, std::uint32_t steps,
                                                 std::uint32_t size) noexcept {
  return static_cast<RingIndex>((static_cast<std::uint64_t>(from) + steps) % size);
}

/// The index `steps` positions counter-clockwise of `from`.
[[nodiscard]] constexpr RingIndex counter_clockwise_step(RingIndex from, std::uint32_t steps,
                                                         std::uint32_t size) noexcept {
  const std::uint64_t s = steps % size;
  return static_cast<RingIndex>((static_cast<std::uint64_t>(from) + size - s) % size);
}

/// True if walking clockwise from `from`, index `a` is reached no later than
/// `b` (ties count as "not later").
[[nodiscard]] constexpr bool clockwise_not_after(RingIndex from, RingIndex a, RingIndex b,
                                                 std::uint32_t size) noexcept {
  return clockwise_distance(from, a, size) <= clockwise_distance(from, b, size);
}

}  // namespace hours::ids
