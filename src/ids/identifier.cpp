#include "ids/identifier.hpp"

#include "util/strings.hpp"

namespace hours::ids {

Identifier::Identifier(const crypto::Sha1Digest& digest) noexcept {
  for (std::size_t i = 0; i < kLimbs; ++i) {
    limbs_[i] = (static_cast<std::uint32_t>(digest[i * 4]) << 24) |
                (static_cast<std::uint32_t>(digest[i * 4 + 1]) << 16) |
                (static_cast<std::uint32_t>(digest[i * 4 + 2]) << 8) |
                static_cast<std::uint32_t>(digest[i * 4 + 3]);
  }
}

Identifier Identifier::from_name(std::string_view name) noexcept {
  return Identifier{crypto::sha1(name)};
}

Identifier Identifier::from_uint64(std::uint64_t value) noexcept {
  Identifier id;
  id.limbs_[3] = static_cast<std::uint32_t>(value >> 32);
  id.limbs_[4] = static_cast<std::uint32_t>(value);
  return id;
}

std::uint64_t Identifier::clockwise_distance_top64(const Identifier& other) const noexcept {
  // Compute (other - *this) mod 2^160, then keep the top 64 bits.
  std::array<std::uint32_t, kLimbs> diff{};
  std::int64_t borrow = 0;
  for (std::size_t i = kLimbs; i-- > 0;) {
    std::int64_t d = static_cast<std::int64_t>(other.limbs_[i]) -
                     static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (d < 0) {
      d += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    diff[i] = static_cast<std::uint32_t>(d);
  }
  // Mod-2^160 subtraction discards the final borrow (wrap-around).
  return (static_cast<std::uint64_t>(diff[0]) << 32) | diff[1];
}

std::string Identifier::to_hex() const {
  crypto::Sha1Digest bytes{};
  for (std::size_t i = 0; i < kLimbs; ++i) {
    bytes[i * 4] = static_cast<std::uint8_t>(limbs_[i] >> 24);
    bytes[i * 4 + 1] = static_cast<std::uint8_t>(limbs_[i] >> 16);
    bytes[i * 4 + 2] = static_cast<std::uint8_t>(limbs_[i] >> 8);
    bytes[i * 4 + 3] = static_cast<std::uint8_t>(limbs_[i]);
  }
  return util::hex_encode(bytes.data(), bytes.size());
}

}  // namespace hours::ids
