#include "metrics/timeline.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace hours::metrics {

Timeline::Timeline(std::uint64_t window_width) : width_(window_width) {
  HOURS_EXPECTS(window_width > 0);
}

void Timeline::record(std::uint64_t at, bool delivered, std::uint64_t latency) {
  const std::uint64_t start = at - at % width_;
  Window& w = buckets_[start];
  w.start = start;
  ++w.attempts;
  ++total_attempts_;
  if (delivered) {
    ++w.delivered;
    ++total_delivered_;
    w.latency_sum += latency;
  }
}

std::vector<Timeline::Window> Timeline::windows() const {
  std::vector<Window> out;
  if (buckets_.empty()) return out;
  const std::uint64_t first = buckets_.begin()->first;
  const std::uint64_t last = buckets_.rbegin()->first;
  out.reserve((last - first) / width_ + 1);
  for (std::uint64_t start = first; start <= last; start += width_) {
    const auto it = buckets_.find(start);
    if (it != buckets_.end()) {
      out.push_back(it->second);
    } else {
      Window empty;
      empty.start = start;
      out.push_back(empty);
    }
  }
  return out;
}

double Timeline::delivery_ratio(std::uint64_t from, std::uint64_t until) const {
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;
  for (auto it = buckets_.lower_bound(from - from % width_); it != buckets_.end(); ++it) {
    if (it->first >= until) break;
    attempts += it->second.attempts;
    delivered += it->second.delivered;
  }
  return attempts == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(attempts);
}

std::string Timeline::to_json() const {
  std::string out = "{\"window_width\":" + std::to_string(width_) + ",\"windows\":[";
  char buf[64];
  bool first = true;
  for (const auto& w : windows()) {
    if (!first) out += ',';
    first = false;
    out += "{\"start\":" + std::to_string(w.start) +
           ",\"attempts\":" + std::to_string(w.attempts) +
           ",\"delivered\":" + std::to_string(w.delivered);
    std::snprintf(buf, sizeof(buf), ",\"delivery_ratio\":%.6f", w.delivery_ratio());
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"mean_latency\":%.3f}", w.mean_latency());
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace hours::metrics
