#include "metrics/table_writer.hpp"

#include <cstdio>
#include <iostream>

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace hours::metrics {

TableWriter::TableWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HOURS_EXPECTS(!headers_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  HOURS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableWriter::fmt(std::uint64_t value) { return std::to_string(value); }

void TableWriter::print(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    std::cout << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::cout << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
                << (c + 1 == cells.size() ? " |" : " | ");
    }
    std::cout << '\n';
  };

  std::cout << "\n== " << title << " ==\n";
  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 3;
  std::cout << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

bool TableWriter::write_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) {
    HOURS_LOG_WARN("cannot open CSV output '%s'", path.c_str());
    return false;
  }
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << (c + 1 == cells.size() ? '\n' : ',');
    }
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

}  // namespace hours::metrics
