// Windowed availability/latency timeline for attack-and-recovery studies.
//
// Benches that exercise a fault schedule need delivery ratio *as a function
// of time* — before, during, and after an outage — not a single aggregate.
// The Timeline buckets per-query observations into fixed-width windows and
// emits them as a table or JSON, with deterministic formatting so a seeded
// run reproduces the output byte for byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hours::metrics {

class Timeline {
 public:
  /// `window_width` is the bucket width in the caller's time unit (ticks).
  explicit Timeline(std::uint64_t window_width);

  /// Records one query outcome at time `at` (conventionally the submission
  /// instant, so a window's ratio reflects service availability for queries
  /// issued in it). `latency` is only accumulated for delivered queries.
  void record(std::uint64_t at, bool delivered, std::uint64_t latency = 0);

  struct Window {
    std::uint64_t start = 0;     ///< inclusive window start
    std::uint64_t attempts = 0;
    std::uint64_t delivered = 0;
    std::uint64_t latency_sum = 0;  ///< over delivered queries

    [[nodiscard]] double delivery_ratio() const noexcept {
      return attempts == 0 ? 0.0
                           : static_cast<double>(delivered) / static_cast<double>(attempts);
    }
    [[nodiscard]] double mean_latency() const noexcept {
      return delivered == 0 ? 0.0
                            : static_cast<double>(latency_sum) / static_cast<double>(delivered);
    }
  };

  [[nodiscard]] std::uint64_t window_width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t total_attempts() const noexcept { return total_attempts_; }
  [[nodiscard]] std::uint64_t total_delivered() const noexcept { return total_delivered_; }

  /// All windows from the earliest to the latest observation, in time order;
  /// gaps are materialized as empty windows so plots keep an even x-axis.
  [[nodiscard]] std::vector<Window> windows() const;

  /// Aggregated delivery ratio over windows intersecting [from, until) —
  /// window granularity, keyed by window start. Handy for phase summaries
  /// (pre-attack vs. during vs. recovered).
  [[nodiscard]] double delivery_ratio(std::uint64_t from, std::uint64_t until) const;

  /// Deterministic JSON: {"window_width":W,"windows":[{"start":...,
  /// "attempts":...,"delivered":...,"delivery_ratio":...,"mean_latency":...}]}
  [[nodiscard]] std::string to_json() const;

 private:
  std::uint64_t width_;
  std::map<std::uint64_t, Window> buckets_;  ///< keyed by window start
  std::uint64_t total_attempts_ = 0;
  std::uint64_t total_delivered_ = 0;
};

}  // namespace hours::metrics
