// Minimal deterministic JSON builder for bench reports and sinks.
//
// Benches used to hand-concatenate JSON with std::ostringstream, each one
// re-inventing comma placement and double formatting. JsonWriter tracks
// nesting and separators, formats doubles with an explicit digit count
// (byte-stable across runs — the reproducibility comparisons depend on
// it), and emits compact one-line output matching the house style of
// Timeline::to_json(). It is a writer, not a DOM: values stream in call
// order, and misuse (value without key inside an object, unbalanced ends)
// trips contracts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hours::metrics {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container begin.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);  ///< escapes quotes/backslashes/control
  /// Without this overload a string literal would take the pointer-to-bool
  /// standard conversion over the string_view user conversion.
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  /// Fixed-point double with `digits` after the point (deterministic).
  JsonWriter& value(double v, int digits = 4);

  /// Splices pre-rendered JSON (e.g. Timeline::to_json()) as one value.
  JsonWriter& raw(std::string_view json);

  /// Convenience: key + value.
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }
  JsonWriter& field(std::string_view name, double v, int digits) {
    key(name);
    return value(v, digits);
  }

  /// The finished document; all containers must be closed.
  [[nodiscard]] const std::string& str() const;

  /// Fixed-point formatting helper shared with non-writer call sites.
  [[nodiscard]] static std::string fixed(double v, int digits);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;  ///< a key was written, value pending
};

}  // namespace hours::metrics
