#include "metrics/json_writer.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace hours::metrics {

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Frame::kObject) {
    HOURS_EXPECTS(have_key_);  // object members need a key first
    have_key_ = false;
    return;
  }
  if (need_comma_) out_ += ",";
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += "{";
  stack_.push_back(Frame::kObject);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HOURS_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject && !have_key_);
  stack_.pop_back();
  out_ += "}";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += "[";
  stack_.push_back(Frame::kArray);
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HOURS_EXPECTS(!stack_.empty() && stack_.back() == Frame::kArray);
  stack_.pop_back();
  out_ += "]";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  HOURS_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject && !have_key_);
  if (need_comma_) out_ += ",";
  out_ += "\"";
  out_ += name;
  out_ += "\":";
  need_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += "\"";
  for (const char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += "\"";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v, int digits) {
  before_value();
  out_ += fixed(v, digits);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  need_comma_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  HOURS_EXPECTS(stack_.empty());  // every begin_* must be closed
  return out_;
}

std::string JsonWriter::fixed(double v, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, v);
  return buffer;
}

}  // namespace hours::metrics
