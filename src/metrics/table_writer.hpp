// Console table and CSV emission for the benchmark harness.
//
// Every bench prints a fixed-width table (the same rows/series the paper
// reports) and mirrors it to a CSV file next to the binary so results can be
// re-plotted without re-running.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace hours::metrics {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Adds a row; cells are pre-formatted strings. Row width must match.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::uint64_t value);

  /// Renders the table with padded columns to stdout, preceded by `title`.
  void print(const std::string& title) const;

  /// Writes headers+rows as CSV. Returns false (and logs) on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hours::metrics
