#include "metrics/histogram.hpp"

#include <cmath>

namespace hours::metrics {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value >= bins_.size()) bins_.resize(value + 1, 0);
  bins_[value] += count;
  total_count_ += count;
  sum_ += static_cast<long double>(value) * static_cast<long double>(count);
  sum_sq_ += static_cast<long double>(value) * static_cast<long double>(value) *
             static_cast<long double>(count);
}

std::uint64_t Histogram::count_at(std::uint64_t value) const noexcept {
  return value < bins_.size() ? bins_[value] : 0;
}

std::uint64_t Histogram::max_value() const noexcept {
  for (std::size_t i = bins_.size(); i-- > 0;) {
    if (bins_[i] != 0) return i;
  }
  return 0;
}

std::uint64_t Histogram::min_value() const noexcept {
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] != 0) return i;
  }
  return 0;
}

double Histogram::mean() const noexcept {
  if (total_count_ == 0) return 0.0;
  return static_cast<double>(sum_ / static_cast<long double>(total_count_));
}

double Histogram::variance() const noexcept {
  if (total_count_ == 0) return 0.0;
  const long double n = static_cast<long double>(total_count_);
  const long double m = sum_ / n;
  return static_cast<double>(sum_sq_ / n - m * m);
}

std::uint64_t Histogram::quantile(double p) const {
  HOURS_EXPECTS(p >= 0.0 && p <= 1.0);
  if (total_count_ == 0) return 0;
  const auto needed = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total_count_))));
  std::uint64_t seen = 0;
  for (std::size_t v = 0; v < bins_.size(); ++v) {
    seen += bins_[v];
    if (seen >= needed) return v;
  }
  return max_value();
}

double Histogram::cdf(std::uint64_t value) const noexcept {
  if (total_count_ == 0) return 0.0;
  std::uint64_t seen = 0;
  const std::size_t limit = std::min<std::size_t>(bins_.size(), value + 1);
  for (std::size_t v = 0; v < limit; ++v) seen += bins_[v];
  return static_cast<double>(seen) / static_cast<double>(total_count_);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t v = 0; v < other.bins_.size(); ++v) {
    if (other.bins_[v] != 0) add(v, other.bins_[v]);
  }
}

}  // namespace hours::metrics
