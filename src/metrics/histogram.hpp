// Exact integer histogram for hop counts, table sizes and workloads.
//
// All quantities the paper plots are small non-negative integers, so an
// exact counting histogram (vector indexed by value) supports means and
// percentiles with no approximation error even over millions of samples.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace hours::metrics {

class Histogram {
 public:
  /// Records one observation of `value`.
  void add(std::uint64_t value, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_count_; }
  [[nodiscard]] bool empty() const noexcept { return total_count_ == 0; }

  /// Number of observations equal to `value`.
  [[nodiscard]] std::uint64_t count_at(std::uint64_t value) const noexcept;

  /// Largest observed value (0 if empty).
  [[nodiscard]] std::uint64_t max_value() const noexcept;
  /// Smallest observed value (0 if empty).
  [[nodiscard]] std::uint64_t min_value() const noexcept;

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;

  /// Exact p-quantile (p in [0, 1]): smallest value v such that at least
  /// ceil(p * total) observations are <= v.
  [[nodiscard]] std::uint64_t quantile(double p) const;

  /// Fraction of observations <= value.
  [[nodiscard]] double cdf(std::uint64_t value) const noexcept;

  /// Per-value counts (index = value); trailing zero bins trimmed.
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const noexcept { return bins_; }

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_count_ = 0;
  long double sum_ = 0;
  long double sum_sq_ = 0;
};

}  // namespace hours::metrics
