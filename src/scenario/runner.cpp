#include "scenario/runner.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <sstream>

#include "hours/concurrent_resolver.hpp"
#include "hours/resolver.hpp"
#include "jobs/sweep.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/timeline.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/adaptive_attacker.hpp"
#include "sim/fault_injector.hpp"
#include "sim/query_client.hpp"
#include "sim/ring_protocol.hpp"
#include "trace/jsonl_sink.hpp"
#include "trace/sink.hpp"
#include "util/contracts.hpp"
#include "workload/workload.hpp"

namespace hours::scenario {

namespace {

using metrics::JsonWriter;

std::size_t phase_at(const std::vector<Phase>& phases, std::uint64_t t) {
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (t < phases[i].until) return i;
  }
  return phases.size() - 1;
}

/// Per-phase destination sampler, or nullptr for uniform — uniform draws
/// come from the main workload stream so single-phase uniform scenarios
/// reproduce the legacy benches' exact draw sequence.
std::vector<std::unique_ptr<workload::Sampler>> make_samplers(const Scenario& sc,
                                                              std::size_t universe) {
  std::vector<std::unique_ptr<workload::Sampler>> samplers;
  for (std::size_t i = 0; i < sc.phases.size(); ++i) {
    const Popularity& pop = sc.phases[i].popularity;
    const std::uint64_t seed = rng::mix64(sc.seed, 0x504F50ULL + i);  // "POP"
    switch (pop.kind) {
      case Popularity::Kind::kUniform:
        samplers.push_back(nullptr);
        break;
      case Popularity::Kind::kZipf:
        samplers.push_back(
            std::make_unique<workload::ZipfSampler>(universe, pop.exponent, seed));
        break;
      case Popularity::Kind::kHotspot:
        samplers.push_back(std::make_unique<workload::HotspotSampler>(
            universe, static_cast<std::size_t>(pop.hot), pop.fraction, seed));
        break;
    }
  }
  return samplers;
}

void render_client(JsonWriter& json, const sim::QueryClientStats& stats) {
  json.key("client").begin_object();
  json.field("submitted", stats.submitted);
  json.field("delivered", stats.delivered);
  json.field("deadline_exceeded", stats.deadline_exceeded);
  json.field("no_route", stats.no_route);
  json.field("retransmissions", stats.retransmissions);
  json.field("failovers", stats.failovers);
  json.end_object();
}

void render_faults(JsonWriter& json, const sim::FaultInjectorStats& stats) {
  json.key("faults").begin_object();
  json.field("kills", stats.kills);
  json.field("revivals", stats.revivals);
  json.field("link_cuts", stats.link_cuts);
  json.field("link_heals", stats.link_heals);
  json.field("loss_changes", stats.loss_changes);
  json.field("behavior_changes", stats.behavior_changes);
  json.end_object();
}

void render_plan(JsonWriter& json, const std::vector<std::string>& lines) {
  if (lines.empty()) return;
  json.key("plan").begin_array();
  for (const auto& line : lines) json.value(line);
  json.end_array();
}

void render_expectations(JsonWriter& json, const std::vector<Expectation>& expect,
                         const std::function<bool(const Expectation&)>& holds,
                         RunOutcome& outcome) {
  if (expect.empty()) return;
  json.key("expectations").begin_array();
  for (const auto& ex : expect) {
    const bool pass = holds(ex);
    if (!pass) {
      outcome.expectations_met = false;
      outcome.failed.push_back(ex.describe());
    }
    json.begin_object();
    json.field("check", ex.describe());
    json.field("pass", pass);
    json.end_object();
  }
  json.end_array();
}

// ---------------------------------------------------------------------------
// Ring scenarios: RingSimulation + QueryClient in simulator ticks.
// ---------------------------------------------------------------------------

struct TrafficSample {
  sim::Ticks at = 0;
  std::uint64_t repairs = 0;
  std::uint64_t claims = 0;
  std::uint64_t link_dropped = 0;
  bool connected = true;
};

RunOutcome run_ring(const Scenario& sc, const RunOptions& options) {
  using namespace hours::sim;

  RingSimConfig cfg;
  cfg.size = sc.ring.size;
  cfg.params = sc.ring.params;
  if (sc.ring.seed.has_value()) cfg.seed = *sc.ring.seed;
  cfg.probe_period = sc.ring.probe_period;
  cfg.probe_failure_threshold = sc.ring.probe_failure_threshold;
  cfg.liveness = sc.liveness;

  // Control run for the fixpoint check: identical ring, no faults, no
  // workload — its tables at the horizon are the no-fault fixpoint.
  std::unique_ptr<RingSimulation> control;
  if (sc.metrics.fixpoint) {
    control = std::make_unique<RingSimulation>(cfg);
    control->start();
    control->simulator().run(sc.horizon);
    HOURS_ASSERT(!control->simulator().truncated());
  }

  RingSimulation ring{cfg};
  ring.start();

  trace::Tracer tracer;
  std::unique_ptr<trace::JsonLinesSink> jsonl;
  if (!options.trace_path.empty()) {
    jsonl = std::make_unique<trace::JsonLinesSink>(options.trace_path);
    tracer.add_sink(jsonl.get());
    ring.set_tracer(&tracer);
  }
  std::unique_ptr<AdaptiveAttacker> attacker;
  if (sc.attacker.kind == AttackerKind::kAdaptive) {
    AdaptiveAttackerConfig acfg;
    acfg.neighborhood = sc.attacker.neighborhood;
    acfg.reaction_delay = sc.attacker.reaction_delay;
    acfg.strike_duration = sc.attacker.strike_duration;
    acfg.max_strikes = sc.attacker.max_strikes;
    acfg.cooldown = sc.attacker.cooldown;
    attacker = std::make_unique<AdaptiveAttacker>(ring, acfg);
    ring.set_tracer(&tracer);
    tracer.add_sink(attacker.get());
  }

  std::unique_ptr<FaultInjector> injector;
  if (!sc.fault_lines.empty()) {
    injector = std::make_unique<FaultInjector>(make_fault_target(ring), sc.faults);
    if (jsonl != nullptr) injector->set_tracer(&tracer);
    injector->arm();
  }

  QueryClientConfig ccfg;
  ccfg.deadline = sc.ring.client_deadline;
  QueryClient client{make_query_network(ring), ccfg};
  if (jsonl != nullptr) client.set_tracer(&tracer);

  auto& sim = ring.simulator();

  // Repair traffic + connectivity at every window boundary. Sampled
  // unconditionally (cheap); emitted only when the document asks.
  auto samples = std::make_shared<std::vector<TrafficSample>>();
  std::function<void()> sample = [&, samples]() {
    TrafficSample s;
    s.at = sim.now();
    s.repairs = ring.repairs_sent();
    s.claims = ring.claims_sent();
    s.link_dropped = ring.messages_link_dropped();
    s.connected = ring.ring_connected();
    samples->push_back(s);
    if (sim.now() + sc.window <= sc.horizon) sim.schedule(sc.window, sample);
  };
  sim.schedule(0, sample);

  const std::uint64_t scale = std::max<std::uint64_t>(1, options.interval_scale);
  auto dest_samplers = make_samplers(sc, cfg.size);
  auto workload_rng = std::make_shared<rng::Xoshiro256>(sc.seed);
  auto qids = std::make_shared<std::vector<std::uint64_t>>();
  const Ticks tail = ccfg.deadline + 2'000;
  const Ticks issue_until = sc.horizon > tail ? sc.horizon - tail : 0;
  std::function<void()> issue = [&, workload_rng, qids]() {
    const std::size_t phase = phase_at(sc.phases, sim.now());
    auto src = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
    if (sc.alive_sources) {
      for (std::uint32_t tries = 0; !ring.alive(src) && tries < cfg.size; ++tries) {
        src = static_cast<ids::RingIndex>(workload_rng->below(cfg.size));
      }
    }
    const auto dest = static_cast<ids::RingIndex>(
        dest_samplers[phase] == nullptr ? workload_rng->below(cfg.size)
                                        : dest_samplers[phase]->next());
    qids->push_back(client.submit(src, dest));
    const Ticks interval = sc.phases[phase].interval * scale;
    if (sim.now() + interval <= issue_until) sim.schedule(interval, issue);
  };
  if (sc.start <= issue_until) sim.schedule(sc.start, issue);
  sim.run(sc.horizon);
  HOURS_ASSERT(!sim.truncated());  // a silent event cap would skew availability
  tracer.flush();

  std::uint64_t unsettled = 0;
  metrics::Timeline timeline{sc.window};
  for (const auto qid : *qids) {
    const auto& out = client.outcome(qid);
    if (out.status == QueryStatus::kPending) {
      ++unsettled;
      continue;
    }
    timeline.record(out.issued_at, out.status == QueryStatus::kDelivered, out.latency());
  }

  bool split_observed = false;
  for (const auto& s : *samples) {
    if (!s.connected) split_observed = true;
  }
  const bool remerged = ring.ring_connected();
  bool fixpoint_matches = false;
  if (control != nullptr) {
    std::ostringstream healed;
    std::ostringstream never;
    for (ids::RingIndex i = 0; i < cfg.size; ++i) {
      healed << i << "->" << ring.cw_successor(i) << "/" << ring.ccw_neighbor(i) << ";";
      never << i << "->" << control->cw_successor(i) << "/" << control->ccw_neighbor(i) << ";";
    }
    fixpoint_matches = healed.str() == never.str();
  }

  RunOutcome outcome;
  JsonWriter json;
  json.begin_object();
  json.field("scenario", sc.name);
  json.field("kind", "ring");
  json.field("seed", sc.seed);
  json.field("size", cfg.size);
  json.field("horizon", sc.horizon);
  json.field("window", sc.window);
  render_plan(json, sc.fault_lines);
  if (sc.metrics.timeline) json.key("timeline").raw(timeline.to_json());
  if (sc.metrics.traffic) {
    // Sample i covers [sample[i].at, sample[i+1].at): deltas, not totals.
    std::map<std::uint64_t, metrics::Timeline::Window> delivery;
    for (const auto& w : timeline.windows()) delivery[w.start] = w;
    json.key("traffic").begin_array();
    for (std::size_t i = 0; i + 1 < samples->size(); ++i) {
      const TrafficSample& a = (*samples)[i];
      const TrafficSample& b = (*samples)[i + 1];
      const metrics::Timeline::Window w =
          delivery.count(a.at) != 0 ? delivery[a.at] : metrics::Timeline::Window{};
      json.begin_object();
      json.field("start", a.at);
      json.field("attempts", w.attempts);
      json.field("delivered", w.delivered);
      json.field("delivery_ratio", w.delivery_ratio(), 4);
      json.field("repairs", b.repairs - a.repairs);
      json.field("claims", b.claims - a.claims);
      json.field("link_dropped", b.link_dropped - a.link_dropped);
      json.field("ring_connected", b.connected);
      json.end_object();
    }
    json.end_array();
  }
  if (sc.metrics.phases && !sc.metrics.phase_defs.empty()) {
    json.key("phases").begin_object();
    for (const auto& p : sc.metrics.phase_defs) {
      json.key(p.name).begin_object();
      json.field("delivery_ratio", timeline.delivery_ratio(p.from, p.until), 4);
      json.end_object();
    }
    json.end_object();
  }
  if (sc.metrics.client) render_client(json, client.stats());
  if (sc.metrics.faults && injector != nullptr) render_faults(json, injector->stats());
  if (sc.metrics.attacker && attacker != nullptr) {
    json.key("attacker").begin_object();
    json.field("adoptions_seen", attacker->adoptions_seen());
    json.field("strikes_launched", attacker->strikes_launched());
    json.end_object();
  }
  if (sc.metrics.counters) json.key("counters").raw(ring.registry().to_json());
  if (sc.metrics.fixpoint) {
    json.key("fixpoint").begin_object();
    json.field("split_observed", split_observed);
    json.field("remerged", remerged);
    json.field("fixpoint_matches", fixpoint_matches);
    json.end_object();
  }
  json.field("unsettled", unsettled);

  std::map<std::string, MetricPhase> phase_by_name;
  for (const auto& p : sc.metrics.phase_defs) phase_by_name[p.name] = p;
  const auto ratio = [&](const std::string& name) {
    const MetricPhase& p = phase_by_name.at(name);
    return timeline.delivery_ratio(p.from, p.until);
  };
  render_expectations(
      json, sc.metrics.expect,
      [&](const Expectation& ex) {
        switch (ex.kind) {
          case Expectation::Kind::kPhaseLt:
            return ratio(ex.left) < ratio(ex.right);
          case Expectation::Kind::kPhaseGe:
            return ratio(ex.left) >= ratio(ex.right);
          case Expectation::Kind::kFlag:
            if (ex.flag == "split_observed") return split_observed;
            if (ex.flag == "remerged") return remerged;
            return fixpoint_matches;
          case Expectation::Kind::kHitRateLt:
          case Expectation::Kind::kHitRateGe:
          case Expectation::Kind::kCounterGe:
          case Expectation::Kind::kCounterLt:
            break;  // validator rejects these on ring scenarios
        }
        return false;
      },
      outcome);
  json.end_object();
  outcome.json = json.str();
  return outcome;
}

// ---------------------------------------------------------------------------
// Hierarchy scenarios: HoursSystem + Resolver in backend seconds.
// ---------------------------------------------------------------------------

struct WindowStats {
  std::uint64_t asked = 0;
  std::uint64_t answered = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] double availability() const noexcept {
    return asked == 0 ? 0.0 : static_cast<double>(answered) / static_cast<double>(asked);
  }
  [[nodiscard]] double hit_rate() const noexcept {
    return asked == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(asked);
  }
};

WindowStats sum_phase(const std::vector<WindowStats>& windows, std::uint64_t width,
                      std::uint64_t from, std::uint64_t until) {
  WindowStats sum;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const std::uint64_t start = i * width;
    if (start < from || start >= until) continue;
    sum.asked += windows[i].asked;
    sum.answered += windows[i].answered;
    sum.hits += windows[i].hits;
  }
  return sum;
}

/// True while `t` falls inside any of the attacker's strike windows.
bool strike_covers(const Attacker& a, std::uint64_t t) {
  for (std::uint32_t s = 0; s < a.strikes; ++s) {
    const std::uint64_t begin = a.at + s * (a.duration + a.gap);
    if (t >= begin && t < begin + a.duration) return true;
  }
  return false;
}

RunOutcome run_hierarchy(const Scenario& sc, const RunOptions& options) {
  const bool defend = sc.liveness.mode == liveness::Mode::kGossip;
  HoursConfig cfg;
  cfg.overlay = sc.hierarchy.params;
  HoursSystem sys{cfg};

  const auto all = topology_names(sc.hierarchy.branching);
  const auto leaves = leaf_names(sc.hierarchy.branching);
  for (const auto& name : all) (void)sys.admit(name);
  for (const auto& leaf : leaves) {
    (void)sys.add_record(leaf, store::Record{"A", leaf, sc.hierarchy.record_ttl});
  }

  // The cache-busting attacker owns a side zone of resolvable leaves,
  // admitted after the main topology so leaf indexing is unchanged.
  std::vector<std::string> cb_names;
  if (sc.attacker.kind == AttackerKind::kCacheBusting) {
    (void)sys.admit("cb");
    for (std::uint64_t j = 0; j < sc.attacker.hosts; ++j) {
      const std::string host = "n" + std::to_string(j) + ".cb";
      (void)sys.admit(host);
      (void)sys.add_record(host, store::Record{"A", host, sc.hierarchy.record_ttl});
      cb_names.push_back(host);
    }
  }

  EventBackend* event = nullptr;
  if (sc.hierarchy.backend == BackendKind::kEvent) {
    EventBackendConfig ecfg;
    ecfg.client.deadline = sc.hierarchy.client_deadline;
    ecfg.ticks_per_second = sc.hierarchy.ticks_per_second;
    ecfg.liveness = sc.liveness;
    event = &sys.use_event_backend(ecfg);

    sim::FaultPlan plan = sc.faults;
    if (sc.attacker.kind == AttackerKind::kStrike) {
      const std::uint64_t tps = sc.hierarchy.ticks_per_second;
      std::vector<std::uint32_t> victims;
      for (const auto& name : sc.attacker.victims) {
        victims.push_back(event->node_id(name).value());
      }
      plan.correlated_outage(std::move(victims), sc.attacker.at * tps,
                             sc.attacker.duration * tps, sc.attacker.strikes,
                             sc.attacker.gap * tps);
    }
    if (!(plan == sim::FaultPlan{})) (void)sys.schedule_faults(std::move(plan));
  }

  trace::Tracer tracer;
  std::unique_ptr<trace::JsonLinesSink> jsonl;
  if (!options.trace_path.empty()) {
    jsonl = std::make_unique<trace::JsonLinesSink>(options.trace_path);
    tracer.add_sink(jsonl.get());
    sys.set_tracer(&tracer);
  }

  // liveness: gossip arms the resolver edge's cache-busting defense — one
  // NegativeCacheDigest, shared across every shard of the concurrent
  // resolver, refusing flagged-zone misses before they reach the authority.
  NegativeCacheDefenseConfig dcfg;
  dcfg.enabled = defend;

  std::unique_ptr<Resolver> serial;
  std::unique_ptr<ConcurrentResolver> concurrent;
  std::function<ResolveResult(const std::string&)> resolve_one;
  if (sc.hierarchy.resolver == ResolverKind::kConcurrent) {
    concurrent = std::make_unique<ConcurrentResolver>(sys, sc.hierarchy.resolver_capacity);
    concurrent->set_defense(dcfg);
    resolve_one = [&](const std::string& name) { return concurrent->resolve(name, sys.now()); };
  } else {
    serial = std::make_unique<Resolver>(sys, sc.hierarchy.resolver_capacity);
    serial->set_defense(dcfg);
    resolve_one = [&](const std::string& name) { return serial->resolve(name); };
  }

  const std::uint64_t divisor = std::max<std::uint64_t>(1, options.rate_divisor);
  auto samplers = make_samplers(sc, leaves.size());
  auto uniform_rng = std::make_shared<rng::Xoshiro256>(sc.seed);

  const std::size_t window_count =
      static_cast<std::size_t>((sc.horizon + sc.window - 1) / sc.window);
  std::vector<WindowStats> windows(window_count);
  WindowStats attacker_totals;
  std::uint64_t cb_cursor = 0;
  bool struck_down = false;

  const auto record = [&](WindowStats& totals, std::uint64_t at, const ResolveResult& r) {
    auto& w = windows[std::min<std::uint64_t>(at / sc.window, window_count - 1)];
    ++w.asked;
    ++totals.asked;
    if (r.answered) {
      ++w.answered;
      ++totals.answered;
    }
    if (r.from_cache) {
      ++w.hits;
      ++totals.hits;
    }
  };
  WindowStats legit_totals;

  while (sys.now() < sc.horizon) {
    const std::uint64_t t = sys.now();
    // Graph backend has no fault scheduler: the strike attacker is mirrored
    // with oracle set_alive toggles at the window boundaries.
    if (sc.hierarchy.backend == BackendKind::kGraph &&
        sc.attacker.kind == AttackerKind::kStrike) {
      const bool strike = strike_covers(sc.attacker, t);
      if (strike != struck_down) {
        for (const auto& v : sc.attacker.victims) (void)sys.set_alive(v, !strike);
        struck_down = strike;
      }
    }
    const std::size_t phase = phase_at(sc.phases, t);
    const std::uint64_t rate = std::max<std::uint64_t>(1, sc.phases[phase].rate / divisor);
    for (std::uint64_t q = 0; q < rate && sys.now() < sc.horizon; ++q) {
      const std::uint64_t at = sys.now();  // failed queries cost time
      const std::size_t pick = samplers[phase] == nullptr
                                   ? static_cast<std::size_t>(uniform_rng->below(leaves.size()))
                                   : samplers[phase]->next();
      record(legit_totals, at, resolve_one(leaves[pick]));
    }
    if (sc.attacker.kind == AttackerKind::kCacheBusting && t >= sc.attacker.from &&
        t < sc.attacker.until) {
      for (std::uint64_t q = 0; q < sc.attacker.rate && sys.now() < sc.horizon; ++q) {
        const std::uint64_t at = sys.now();
        const std::string& name = cb_names[cb_cursor++ % cb_names.size()];
        record(attacker_totals, at, resolve_one(name));
      }
    }
    sys.advance(1);
  }
  tracer.flush();

  const ResolverStats rstats = serial != nullptr ? serial->stats() : concurrent->stats();

  RunOutcome outcome;
  JsonWriter json;
  json.begin_object();
  json.field("scenario", sc.name);
  json.field("kind", "hierarchy");
  json.field("backend", sc.hierarchy.backend == BackendKind::kEvent ? "event" : "graph");
  json.field("seed", sc.seed);
  json.field("nodes", static_cast<std::uint64_t>(all.size()));
  json.field("leaves", static_cast<std::uint64_t>(leaves.size()));
  json.field("record_ttl", sc.hierarchy.record_ttl);
  json.field("horizon", sc.horizon);
  json.field("window", sc.window);
  render_plan(json, sc.fault_lines);
  if (sc.metrics.windows) {
    json.key("windows").begin_array();
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const auto& w = windows[i];
      json.begin_object();
      json.field("start", static_cast<std::uint64_t>(i * sc.window));
      json.field("asked", w.asked);
      json.field("answered", w.answered);
      json.field("hits", w.hits);
      json.field("availability", w.availability(), 4);
      json.field("hit_rate", w.hit_rate(), 4);
      json.end_object();
    }
    json.end_array();
  }
  if (sc.metrics.phases && !sc.metrics.phase_defs.empty()) {
    json.key("phases").begin_object();
    for (const auto& p : sc.metrics.phase_defs) {
      const WindowStats s = sum_phase(windows, sc.window, p.from, p.until);
      json.key(p.name).begin_object();
      json.field("availability", s.availability(), 4);
      json.field("hit_rate", s.hit_rate(), 4);
      json.end_object();
    }
    json.end_object();
  }
  if (sc.metrics.client && event != nullptr && event->client() != nullptr) {
    render_client(json, event->client()->stats());
  }
  if (sc.metrics.faults && event != nullptr) render_faults(json, event->fault_stats());
  if (sc.metrics.resolver) {
    json.key("resolver").begin_object();
    json.field("cache_hits", rstats.cache_hits);
    json.field("cache_misses", rstats.cache_misses);
    json.field("failures", rstats.failures);
    json.field("evictions", rstats.evictions);
    if (defend) {
      json.field("refusals", rstats.refusals);
      json.field("zones_flagged", rstats.zones_flagged);
    }
    json.field("hit_rate", rstats.hit_rate(), 4);
    json.end_object();
  }
  if (sc.metrics.attacker && sc.attacker.kind == AttackerKind::kCacheBusting) {
    json.key("attacker").begin_object();
    json.field("queries", attacker_totals.asked);
    json.field("answered", attacker_totals.answered);
    json.field("hits", attacker_totals.hits);
    json.end_object();
  }

  std::map<std::string, MetricPhase> phase_by_name;
  for (const auto& p : sc.metrics.phase_defs) phase_by_name[p.name] = p;
  const auto phase_stats = [&](const std::string& name) {
    const MetricPhase& p = phase_by_name.at(name);
    return sum_phase(windows, sc.window, p.from, p.until);
  };
  const auto counter_value = [&](const std::string& name) -> std::uint64_t {
    if (name == "cache_hits") return rstats.cache_hits;
    if (name == "cache_misses") return rstats.cache_misses;
    if (name == "failures") return rstats.failures;
    if (name == "evictions") return rstats.evictions;
    if (name == "refusals") return rstats.refusals;
    return rstats.zones_flagged;  // the validator admits no other name
  };
  render_expectations(
      json, sc.metrics.expect,
      [&](const Expectation& ex) {
        switch (ex.kind) {
          case Expectation::Kind::kPhaseLt:
            return phase_stats(ex.left).availability() < phase_stats(ex.right).availability();
          case Expectation::Kind::kPhaseGe:
            return phase_stats(ex.left).availability() >= phase_stats(ex.right).availability();
          case Expectation::Kind::kHitRateLt:
            return phase_stats(ex.left).hit_rate() < phase_stats(ex.right).hit_rate();
          case Expectation::Kind::kHitRateGe:
            return phase_stats(ex.left).hit_rate() >= phase_stats(ex.right).hit_rate();
          case Expectation::Kind::kCounterGe:
            return counter_value(ex.counter) >= ex.threshold;
          case Expectation::Kind::kCounterLt:
            return counter_value(ex.counter) < ex.threshold;
          case Expectation::Kind::kFlag:
            break;  // validator rejects flags on hierarchy scenarios
        }
        return false;
      },
      outcome);
  json.end_object();
  outcome.json = json.str();
  return outcome;
}

}  // namespace

RunOutcome run(const Scenario& scenario, const RunOptions& options) {
  return scenario.kind == SystemKind::kRing ? run_ring(scenario, options)
                                            : run_hierarchy(scenario, options);
}

std::vector<RunOutcome> run_matrix(const std::vector<Scenario>& scenarios,
                                   jobs::Executor& executor, const RunOptions& options) {
  return jobs::sweep<RunOutcome>(
      executor, /*sweep_seed=*/0, scenarios.size(),
      [&scenarios, &options](std::size_t index, rng::Xoshiro256& rng) {
        (void)rng;  // each scenario carries its own seed; sweep order is the contract
        return run(scenarios[index], options);
      });
}

}  // namespace hours::scenario
