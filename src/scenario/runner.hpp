// Executes validated Scenario documents and renders deterministic reports.
//
// run() assembles the system a document describes — RingSimulation +
// QueryClient for "ring" scenarios, HoursSystem + Resolver for "hierarchy"
// ones — arms its fault plan and attacker, drives the phased workload to
// the horizon, and renders one metrics::JsonWriter report whose bytes are a
// pure function of the document (plus RunOptions). run_matrix() fans a
// scenario list across jobs::sweep; because each run is deterministic and
// results merge in task-index order, the matrix output is byte-identical at
// any worker-thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jobs/executor.hpp"
#include "scenario/scenario.hpp"

namespace hours::scenario {

/// Quick-mode scaling knobs (the scenario files always describe the full
/// experiment; CI shrinks the workload, never the schedule).
struct RunOptions {
  std::uint64_t interval_scale = 1;  ///< ring: multiply phase intervals
  std::uint64_t rate_divisor = 1;    ///< hierarchy: divide phase rates (min 1)
  /// Non-empty: stream the run's full event trace to this path as JSONL
  /// (trace/jsonl_sink). Tracing never changes the run's decisions, so the
  /// report bytes are identical with or without it.
  std::string trace_path;
};

struct RunOutcome {
  std::string json;                 ///< the full deterministic report
  bool expectations_met = true;     ///< every declared expectation held
  std::vector<std::string> failed;  ///< describe() of each failed expectation
};

/// Runs one scenario to its horizon. The scenario must have come out of
/// parse()/load_file() — run() trusts its invariants.
[[nodiscard]] RunOutcome run(const Scenario& scenario, const RunOptions& options = {});

/// Runs every scenario as one jobs::sweep task; outcomes return in input
/// order regardless of worker count or scheduling.
[[nodiscard]] std::vector<RunOutcome> run_matrix(const std::vector<Scenario>& scenarios,
                                                 jobs::Executor& executor,
                                                 const RunOptions& options = {});

}  // namespace hours::scenario
