#include "scenario/scenario.hpp"

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

namespace hours::scenario {

namespace {

using snapshot::Json;

const char* type_name(const Json& v) {
  if (v.is_u64()) return "u64";
  if (v.is_string()) return "string";
  if (v.is_array()) return "array";
  return "object";
}

std::string err(const std::string& path, const std::string& what) {
  return path + ": " + what;
}

/// Every validated object goes through this gate: any key outside `allowed`
/// is an error, so typos fail loudly instead of silently deactivating a
/// clause.
std::string reject_unknown(const Json::Object& obj, const std::string& path,
                           std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : obj) {
    (void)value;
    bool known = false;
    for (const auto& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) return err(path + "." + key, "unknown key");
  }
  return "";
}

std::string need_object(const Json* v, const std::string& path, const Json::Object** out) {
  if (v == nullptr) return err(path, "required object missing");
  if (!v->is_object()) {
    return err(path, std::string("expected object (got ") + type_name(*v) + ")");
  }
  *out = &v->fields();
  return "";
}

std::string get_u64(const Json::Object& obj, const std::string& path, std::string_view key,
                    bool required, std::uint64_t* out) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    return required ? err(path + "." + std::string(key), "required field missing") : "";
  }
  if (!it->second.is_u64()) {
    return err(path + "." + std::string(key),
               std::string("expected u64 (got ") + type_name(it->second) + ")");
  }
  *out = it->second.as_u64();
  return "";
}

std::string get_string(const Json::Object& obj, const std::string& path, std::string_view key,
                       bool required, std::string* out) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    return required ? err(path + "." + std::string(key), "required field missing") : "";
  }
  if (!it->second.is_string()) {
    return err(path + "." + std::string(key),
               std::string("expected string (got ") + type_name(it->second) + ")");
  }
  *out = it->second.as_string();
  return "";
}

/// Booleans ride the Json subset as u64 0/1.
std::string get_bool01(const Json::Object& obj, const std::string& path, std::string_view key,
                       bool* out) {
  const auto it = obj.find(key);
  if (it == obj.end()) return "";
  if (!it->second.is_u64() || it->second.as_u64() > 1) {
    return err(path + "." + std::string(key), "expected 0 or 1");
  }
  *out = it->second.as_u64() == 1;
  return "";
}

/// Fractions/exponents ride as decimal strings ("0.9") because the Json
/// subset has no float shape; the runner never re-serializes them, so the
/// usual round-trip drift concern does not apply.
std::string get_decimal(const Json::Object& obj, const std::string& path, std::string_view key,
                        bool required, double lo, double hi, double* out) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    return required ? err(path + "." + std::string(key), "required field missing") : "";
  }
  const std::string full_path = path + "." + std::string(key);
  if (!it->second.is_string()) {
    return err(full_path, std::string("expected decimal string like \"0.5\" (got ") +
                              type_name(it->second) + ")");
  }
  const std::string& text = it->second.as_string();
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return err(full_path, "\"" + text + "\" is not a decimal number");
  }
  if (v < lo || v > hi) {
    std::ostringstream range;
    range << text << " out of range [" << lo << ", " << hi << "]";
    return err(full_path, range.str());
  }
  *out = v;
  return "";
}

std::string parse_design(const Json::Object& obj, const std::string& path,
                         overlay::Design* out) {
  std::string text;
  if (auto e = get_string(obj, path, "design", false, &text); !e.empty()) return e;
  if (text.empty()) return "";
  if (text == "base") {
    *out = overlay::Design::kBase;
  } else if (text == "enhanced") {
    *out = overlay::Design::kEnhanced;
  } else {
    return err(path + ".design", "\"" + text + "\" is not one of \"base\", \"enhanced\"");
  }
  return "";
}

std::string parse_popularity(const Json::Object& phase, const std::string& path,
                             std::uint64_t universe, Popularity* out) {
  const auto it = phase.find("popularity");
  if (it == phase.end()) return "";  // default uniform
  const std::string pop_path = path + ".popularity";
  const Json::Object* obj = nullptr;
  if (auto e = need_object(&it->second, pop_path, &obj); !e.empty()) return e;
  if (auto e = reject_unknown(*obj, pop_path, {"kind", "exponent", "hot", "fraction"});
      !e.empty()) {
    return e;
  }
  std::string kind;
  if (auto e = get_string(*obj, pop_path, "kind", true, &kind); !e.empty()) return e;
  if (kind == "uniform") {
    out->kind = Popularity::Kind::kUniform;
  } else if (kind == "zipf") {
    out->kind = Popularity::Kind::kZipf;
    if (auto e = get_decimal(*obj, pop_path, "exponent", false, 0.0, 4.0, &out->exponent);
        !e.empty()) {
      return e;
    }
  } else if (kind == "hotspot") {
    out->kind = Popularity::Kind::kHotspot;
    if (auto e = get_u64(*obj, pop_path, "hot", true, &out->hot); !e.empty()) return e;
    if (out->hot >= universe) {
      return err(pop_path + ".hot", "index " + std::to_string(out->hot) +
                                        " outside the destination universe (size " +
                                        std::to_string(universe) + ")");
    }
    if (auto e = get_decimal(*obj, pop_path, "fraction", true, 0.0, 1.0, &out->fraction);
        !e.empty()) {
      return e;
    }
  } else {
    return err(pop_path + ".kind",
               "\"" + kind + "\" is not one of \"uniform\", \"zipf\", \"hotspot\"");
  }
  return "";
}

void gen_names(const std::vector<std::uint64_t>& branching, std::size_t level,
               const std::string& suffix, std::vector<std::string>* all,
               std::vector<std::string>* leaves) {
  for (std::uint64_t j = 0; j < branching[level]; ++j) {
    std::string name = "n" + std::to_string(j);
    if (!suffix.empty()) name += "." + suffix;
    if (all != nullptr) all->push_back(name);
    if (level + 1 == branching.size()) {
      leaves->push_back(name);
    } else {
      gen_names(branching, level + 1, name, all, leaves);
    }
  }
}

std::string parse_system(const Json::Object& top, Scenario& sc) {
  const std::string path = "$.system";
  const Json::Object* sys = nullptr;
  const auto it = top.find("system");
  if (auto e = need_object(it == top.end() ? nullptr : &it->second, path, &sys); !e.empty()) {
    return e;
  }
  std::string kind;
  if (auto e = get_string(*sys, path, "kind", true, &kind); !e.empty()) return e;
  if (kind == "ring") {
    sc.kind = SystemKind::kRing;
    if (auto e = reject_unknown(*sys, path,
                                {"kind", "size", "design", "k", "q", "seed", "probe_period",
                                 "probe_failure_threshold", "client_deadline"});
        !e.empty()) {
      return e;
    }
    std::uint64_t size = 0;
    if (auto e = get_u64(*sys, path, "size", true, &size); !e.empty()) return e;
    if (size < 4 || size > 1'000'000) {
      return err(path + ".size", "ring size " + std::to_string(size) + " outside [4, 1000000]");
    }
    sc.ring.size = static_cast<std::uint32_t>(size);
    if (auto e = parse_design(*sys, path, &sc.ring.params.design); !e.empty()) return e;
    std::uint64_t v = sc.ring.params.k;
    if (auto e = get_u64(*sys, path, "k", false, &v); !e.empty()) return e;
    sc.ring.params.k = static_cast<std::uint32_t>(v);
    v = sc.ring.params.q;
    if (auto e = get_u64(*sys, path, "q", false, &v); !e.empty()) return e;
    sc.ring.params.q = static_cast<std::uint32_t>(v);
    std::uint64_t seed = 0;
    if (sys->find("seed") != sys->end()) {
      if (auto e = get_u64(*sys, path, "seed", false, &seed); !e.empty()) return e;
      sc.ring.seed = seed;
    }
    if (auto e = get_u64(*sys, path, "probe_period", false, &sc.ring.probe_period); !e.empty()) {
      return e;
    }
    v = sc.ring.probe_failure_threshold;
    if (auto e = get_u64(*sys, path, "probe_failure_threshold", false, &v); !e.empty()) return e;
    sc.ring.probe_failure_threshold = static_cast<std::uint32_t>(v);
    if (auto e = get_u64(*sys, path, "client_deadline", false, &sc.ring.client_deadline);
        !e.empty()) {
      return e;
    }
    return "";
  }
  if (kind == "hierarchy") {
    sc.kind = SystemKind::kHierarchy;
    if (auto e = reject_unknown(*sys, path,
                                {"kind", "backend", "branching", "design", "k", "q",
                                 "record_ttl", "ticks_per_second", "client_deadline",
                                 "resolver"});
        !e.empty()) {
      return e;
    }
    std::string backend;
    if (auto e = get_string(*sys, path, "backend", true, &backend); !e.empty()) return e;
    if (backend == "graph") {
      sc.hierarchy.backend = BackendKind::kGraph;
    } else if (backend == "event") {
      sc.hierarchy.backend = BackendKind::kEvent;
    } else {
      return err(path + ".backend", "\"" + backend + "\" is not one of \"graph\", \"event\"");
    }
    const auto branching_it = sys->find("branching");
    if (branching_it == sys->end()) return err(path + ".branching", "required field missing");
    if (!branching_it->second.is_array()) {
      return err(path + ".branching", std::string("expected array (got ") +
                                          type_name(branching_it->second) + ")");
    }
    const auto& levels = branching_it->second.items();
    if (levels.empty() || levels.size() > 4) {
      return err(path + ".branching", "expected 1-4 levels, got " +
                                          std::to_string(levels.size()));
    }
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const std::string lpath = path + ".branching[" + std::to_string(i) + "]";
      if (!levels[i].is_u64()) {
        return err(lpath, std::string("expected u64 (got ") + type_name(levels[i]) + ")");
      }
      const std::uint64_t fanout = levels[i].as_u64();
      if (fanout == 0 || fanout > 10'000) {
        return err(lpath, "fan-out " + std::to_string(fanout) + " outside [1, 10000]");
      }
      total *= fanout;
      if (total > 200'000) return err(path + ".branching", "topology exceeds 200000 nodes");
      sc.hierarchy.branching.push_back(fanout);
    }
    if (auto e = parse_design(*sys, path, &sc.hierarchy.params.design); !e.empty()) return e;
    std::uint64_t v = sc.hierarchy.params.k;
    if (auto e = get_u64(*sys, path, "k", false, &v); !e.empty()) return e;
    sc.hierarchy.params.k = static_cast<std::uint32_t>(v);
    v = sc.hierarchy.params.q;
    if (auto e = get_u64(*sys, path, "q", false, &v); !e.empty()) return e;
    sc.hierarchy.params.q = static_cast<std::uint32_t>(v);
    if (auto e = get_u64(*sys, path, "record_ttl", false, &sc.hierarchy.record_ttl);
        !e.empty()) {
      return e;
    }
    if (auto e = get_u64(*sys, path, "ticks_per_second", false, &sc.hierarchy.ticks_per_second);
        !e.empty()) {
      return e;
    }
    if (sc.hierarchy.ticks_per_second == 0) {
      return err(path + ".ticks_per_second", "must be >= 1");
    }
    if (auto e = get_u64(*sys, path, "client_deadline", false, &sc.hierarchy.client_deadline);
        !e.empty()) {
      return e;
    }
    if (const auto res_it = sys->find("resolver"); res_it != sys->end()) {
      const std::string rpath = path + ".resolver";
      const Json::Object* res = nullptr;
      if (auto e = need_object(&res_it->second, rpath, &res); !e.empty()) return e;
      if (auto e = reject_unknown(*res, rpath, {"kind", "capacity"}); !e.empty()) return e;
      std::string rkind;
      if (auto e = get_string(*res, rpath, "kind", false, &rkind); !e.empty()) return e;
      if (rkind == "concurrent") {
        sc.hierarchy.resolver = ResolverKind::kConcurrent;
      } else if (!rkind.empty() && rkind != "serial") {
        return err(rpath + ".kind",
                   "\"" + rkind + "\" is not one of \"serial\", \"concurrent\"");
      }
      if (auto e = get_u64(*res, rpath, "capacity", false, &sc.hierarchy.resolver_capacity);
          !e.empty()) {
        return e;
      }
      if (sc.hierarchy.resolver_capacity == 0) return err(rpath + ".capacity", "must be >= 1");
    }
    return "";
  }
  return err(path + ".kind", "\"" + kind + "\" is not one of \"ring\", \"hierarchy\"");
}

std::string parse_workload(const Json::Object& top, Scenario& sc) {
  const std::string path = "$.workload";
  const Json::Object* wl = nullptr;
  const auto it = top.find("workload");
  if (auto e = need_object(it == top.end() ? nullptr : &it->second, path, &wl); !e.empty()) {
    return e;
  }
  const bool ring = sc.kind == SystemKind::kRing;
  if (ring) {
    if (auto e = reject_unknown(*wl, path,
                                {"horizon", "window", "start", "alive_sources", "phases"});
        !e.empty()) {
      return e;
    }
  } else {
    if (auto e = reject_unknown(*wl, path, {"horizon", "window", "phases"}); !e.empty()) {
      return e;
    }
  }
  if (auto e = get_u64(*wl, path, "horizon", true, &sc.horizon); !e.empty()) return e;
  if (auto e = get_u64(*wl, path, "window", true, &sc.window); !e.empty()) return e;
  if (sc.window == 0) return err(path + ".window", "must be >= 1");
  if (sc.horizon < sc.window) return err(path + ".horizon", "must be >= window");
  if (ring) {
    if (auto e = get_u64(*wl, path, "start", false, &sc.start); !e.empty()) return e;
    if (auto e = get_bool01(*wl, path, "alive_sources", &sc.alive_sources); !e.empty()) {
      return e;
    }
  }

  const auto phases_it = wl->find("phases");
  if (phases_it == wl->end()) return err(path + ".phases", "required field missing");
  if (!phases_it->second.is_array()) {
    return err(path + ".phases",
               std::string("expected array (got ") + type_name(phases_it->second) + ")");
  }
  const auto& items = phases_it->second.items();
  if (items.empty()) return err(path + ".phases", "at least one phase required");
  const std::uint64_t universe =
      ring ? sc.ring.size
           : [&sc] {
               std::uint64_t leaves = 1;
               for (const auto b : sc.hierarchy.branching) leaves *= b;
               return leaves;
             }();
  std::uint64_t previous_until = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::string ppath = path + ".phases[" + std::to_string(i) + "]";
    const Json::Object* phase = nullptr;
    if (auto e = need_object(&items[i], ppath, &phase); !e.empty()) return e;
    if (auto e = reject_unknown(*phase, ppath,
                                ring ? std::initializer_list<std::string_view>{
                                           "until", "interval", "popularity"}
                                     : std::initializer_list<std::string_view>{
                                           "until", "rate", "popularity"});
        !e.empty()) {
      return e;
    }
    Phase p;
    if (auto e = get_u64(*phase, ppath, "until", true, &p.until); !e.empty()) return e;
    if (p.until <= previous_until) {
      return err(ppath + ".until", "phase boundaries must be strictly increasing");
    }
    previous_until = p.until;
    if (ring) {
      if (auto e = get_u64(*phase, ppath, "interval", true, &p.interval); !e.empty()) return e;
      if (p.interval == 0) return err(ppath + ".interval", "must be >= 1");
    } else {
      if (auto e = get_u64(*phase, ppath, "rate", true, &p.rate); !e.empty()) return e;
      if (p.rate == 0) return err(ppath + ".rate", "must be >= 1");
    }
    if (auto e = parse_popularity(*phase, ppath, universe, &p.popularity); !e.empty()) return e;
    sc.phases.push_back(std::move(p));
  }
  if (sc.phases.back().until != sc.horizon) {
    return err(path + ".phases[" + std::to_string(items.size() - 1) + "].until",
               "last phase must end exactly at the horizon (" + std::to_string(sc.horizon) +
                   ")");
  }
  return "";
}

std::string parse_faults(const Json::Object& top, Scenario& sc) {
  const auto it = top.find("faults");
  if (it == top.end()) return "";
  const std::string path = "$.faults";
  const Json::Object* faults = nullptr;
  if (auto e = need_object(&it->second, path, &faults); !e.empty()) return e;
  if (auto e = reject_unknown(*faults, path, {"plan"}); !e.empty()) return e;
  const auto plan_it = faults->find("plan");
  if (plan_it == faults->end()) return err(path + ".plan", "required field missing");
  if (!plan_it->second.is_array()) {
    return err(path + ".plan",
               std::string("expected array (got ") + type_name(plan_it->second) + ")");
  }
  std::string joined;
  const auto& lines = plan_it->second.items();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].is_string()) {
      return err(path + ".plan[" + std::to_string(i) + "]",
                 std::string("expected string (got ") + type_name(lines[i]) + ")");
    }
    sc.fault_lines.push_back(lines[i].as_string());
    joined += lines[i].as_string();
    joined += '\n';
  }
  std::string parse_error;
  auto plan = sim::FaultPlan::parse(joined, &parse_error);
  if (!plan.has_value()) return err(path + ".plan", parse_error);
  if (sc.kind == SystemKind::kRing && plan->needs_behavior_hook()) {
    return err(path + ".plan", "byzantine() is unsupported on the ring system "
                               "(no insider behavior hook)");
  }
  if (sc.kind == SystemKind::kHierarchy && sc.hierarchy.backend == BackendKind::kGraph) {
    return err(path, "the graph backend cannot schedule faults; use backend "
                     "\"event\" or an oracle \"strike\" attacker");
  }
  sc.faults = std::move(*plan);
  return "";
}

std::string parse_attacker(const Json::Object& top, Scenario& sc) {
  const auto it = top.find("attacker");
  if (it == top.end()) return "";
  const std::string path = "$.attacker";
  const Json::Object* atk = nullptr;
  if (auto e = need_object(&it->second, path, &atk); !e.empty()) return e;
  std::string kind;
  if (auto e = get_string(*atk, path, "kind", true, &kind); !e.empty()) return e;
  Attacker& a = sc.attacker;
  if (kind == "adaptive") {
    if (sc.kind != SystemKind::kRing) {
      return err(path + ".kind", "\"adaptive\" requires a ring system (it subscribes "
                                 "to ring recovery_adopt events)");
    }
    a.kind = AttackerKind::kAdaptive;
    if (auto e = reject_unknown(*atk, path,
                                {"kind", "neighborhood", "reaction_delay", "strike_duration",
                                 "max_strikes", "cooldown"});
        !e.empty()) {
      return e;
    }
    std::uint64_t v = a.neighborhood;
    if (auto e = get_u64(*atk, path, "neighborhood", false, &v); !e.empty()) return e;
    a.neighborhood = static_cast<std::uint32_t>(v);
    if (auto e = get_u64(*atk, path, "reaction_delay", false, &a.reaction_delay); !e.empty()) {
      return e;
    }
    if (auto e = get_u64(*atk, path, "strike_duration", false, &a.strike_duration);
        !e.empty()) {
      return e;
    }
    v = a.max_strikes;
    if (auto e = get_u64(*atk, path, "max_strikes", false, &v); !e.empty()) return e;
    a.max_strikes = static_cast<std::uint32_t>(v);
    if (auto e = get_u64(*atk, path, "cooldown", false, &a.cooldown); !e.empty()) return e;
    return "";
  }
  if (kind == "strike") {
    if (sc.kind != SystemKind::kHierarchy) {
      return err(path + ".kind", "\"strike\" requires a hierarchy system (victims are "
                                 "admitted names); ring strikes go in $.faults.plan");
    }
    a.kind = AttackerKind::kStrike;
    if (auto e = reject_unknown(*atk, path,
                                {"kind", "victims", "at", "duration", "strikes", "gap"});
        !e.empty()) {
      return e;
    }
    const auto victims_it = atk->find("victims");
    if (victims_it == atk->end()) return err(path + ".victims", "required field missing");
    if (!victims_it->second.is_array() || victims_it->second.items().empty()) {
      return err(path + ".victims", "expected non-empty array of admitted names");
    }
    std::vector<std::string> all;
    std::vector<std::string> leaves;
    gen_names(sc.hierarchy.branching, 0, "", &all, &leaves);
    const std::set<std::string> known(all.begin(), all.end());
    const auto& victims = victims_it->second.items();
    for (std::size_t i = 0; i < victims.size(); ++i) {
      const std::string vpath = path + ".victims[" + std::to_string(i) + "]";
      if (!victims[i].is_string()) {
        return err(vpath, std::string("expected string (got ") + type_name(victims[i]) + ")");
      }
      const std::string& name = victims[i].as_string();
      if (known.count(name) == 0) {
        return err(vpath, "\"" + name + "\" is not in the generated topology (names are "
                                        "\"n<i>\", \"n<j>.n<i>\", ...)");
      }
      a.victims.push_back(name);
    }
    if (auto e = get_u64(*atk, path, "at", true, &a.at); !e.empty()) return e;
    if (auto e = get_u64(*atk, path, "duration", true, &a.duration); !e.empty()) return e;
    if (a.duration == 0) return err(path + ".duration", "must be >= 1");
    std::uint64_t v = a.strikes;
    if (auto e = get_u64(*atk, path, "strikes", false, &v); !e.empty()) return e;
    if (v == 0) return err(path + ".strikes", "must be >= 1");
    a.strikes = static_cast<std::uint32_t>(v);
    if (auto e = get_u64(*atk, path, "gap", false, &a.gap); !e.empty()) return e;
    return "";
  }
  if (kind == "cache_busting") {
    if (sc.kind != SystemKind::kHierarchy) {
      return err(path + ".kind",
                 "\"cache_busting\" requires a hierarchy system (it attacks the "
                 "resolver cache)");
    }
    a.kind = AttackerKind::kCacheBusting;
    if (auto e = reject_unknown(*atk, path, {"kind", "hosts", "rate", "from", "until"});
        !e.empty()) {
      return e;
    }
    if (auto e = get_u64(*atk, path, "hosts", false, &a.hosts); !e.empty()) return e;
    if (a.hosts == 0 || a.hosts > 100'000) {
      return err(path + ".hosts", "must be in [1, 100000]");
    }
    if (auto e = get_u64(*atk, path, "rate", true, &a.rate); !e.empty()) return e;
    if (a.rate == 0) return err(path + ".rate", "must be >= 1");
    if (auto e = get_u64(*atk, path, "from", true, &a.from); !e.empty()) return e;
    if (auto e = get_u64(*atk, path, "until", true, &a.until); !e.empty()) return e;
    if (a.until <= a.from) return err(path + ".until", "must be > from");
    return "";
  }
  return err(path + ".kind", "\"" + kind + "\" is not one of \"adaptive\", \"strike\", "
                                           "\"cache_busting\"");
}

std::string parse_liveness(const Json::Object& top, Scenario& sc) {
  const auto it = top.find("liveness");
  if (it == top.end()) return "";  // default probe_only
  const std::string path = "$.liveness";
  const Json::Object* lv = nullptr;
  if (auto e = need_object(&it->second, path, &lv); !e.empty()) return e;
  if (auto e = reject_unknown(*lv, path, {"source", "digest_budget", "digest_horizon"});
      !e.empty()) {
    return e;
  }
  std::string source;
  if (auto e = get_string(*lv, path, "source", true, &source); !e.empty()) return e;
  if (source == "probe_only") {
    sc.liveness.mode = liveness::Mode::kProbeOnly;
  } else if (source == "gossip") {
    sc.liveness.mode = liveness::Mode::kGossip;
  } else {
    return err(path + ".source",
               "\"" + source + "\" is not one of \"probe_only\", \"gossip\"");
  }
  std::uint64_t budget = sc.liveness.digest_budget;
  if (auto e = get_u64(*lv, path, "digest_budget", false, &budget); !e.empty()) return e;
  if (budget == 0 || budget > 64) {
    return err(path + ".digest_budget", "must be in [1, 64]");
  }
  sc.liveness.digest_budget = static_cast<std::uint32_t>(budget);
  if (auto e = get_u64(*lv, path, "digest_horizon", false, &sc.liveness.digest_horizon);
      !e.empty()) {
    return e;
  }
  if (sc.liveness.digest_horizon == 0) return err(path + ".digest_horizon", "must be >= 1");
  if (sc.liveness.mode == liveness::Mode::kProbeOnly &&
      (lv->find("digest_budget") != lv->end() || lv->find("digest_horizon") != lv->end())) {
    return err(path, "digest tuning requires source \"gossip\"");
  }
  return "";
}

/// Resolver stat names a counter expectation may reference (hierarchy-only;
/// the runner reads them off ResolverStats after the run).
constexpr std::string_view kCounterNames[] = {
    "cache_hits", "cache_misses", "failures", "evictions", "refusals", "zones_flagged"};

std::string parse_metrics(const Json::Object& top, Scenario& sc) {
  MetricsSpec& m = sc.metrics;
  const auto it = top.find("metrics");
  if (it == top.end()) return "";
  const std::string path = "$.metrics";
  const Json::Object* metrics = nullptr;
  if (auto e = need_object(&it->second, path, &metrics); !e.empty()) return e;
  if (auto e = reject_unknown(*metrics, path, {"emit", "phases", "fixpoint", "expect"});
      !e.empty()) {
    return e;
  }
  const bool ring = sc.kind == SystemKind::kRing;

  if (const auto emit_it = metrics->find("emit"); emit_it != metrics->end()) {
    if (!emit_it->second.is_array()) {
      return err(path + ".emit",
                 std::string("expected array (got ") + type_name(emit_it->second) + ")");
    }
    m.timeline = m.traffic = m.windows = m.phases = m.client = false;
    m.faults = m.counters = m.resolver = m.attacker = false;
    const auto& sections = emit_it->second.items();
    for (std::size_t i = 0; i < sections.size(); ++i) {
      const std::string epath = path + ".emit[" + std::to_string(i) + "]";
      if (!sections[i].is_string()) {
        return err(epath, std::string("expected string (got ") + type_name(sections[i]) + ")");
      }
      const std::string& section = sections[i].as_string();
      bool* flag = nullptr;
      if (ring && section == "timeline") flag = &m.timeline;
      if (ring && section == "traffic") flag = &m.traffic;
      if (ring && section == "counters") flag = &m.counters;
      if (!ring && section == "windows") flag = &m.windows;
      if (!ring && section == "resolver") flag = &m.resolver;
      if (section == "phases") flag = &m.phases;
      if (section == "client") flag = &m.client;
      if (section == "faults") flag = &m.faults;
      if (section == "attacker") flag = &m.attacker;
      if (flag == nullptr) {
        return err(epath, "\"" + section + "\" is not a " +
                              (ring ? std::string("ring") : std::string("hierarchy")) +
                              " report section");
      }
      *flag = true;
    }
  }

  if (auto e = get_bool01(*metrics, path, "fixpoint", &m.fixpoint); !e.empty()) return e;
  if (m.fixpoint && !ring) {
    return err(path + ".fixpoint", "the no-fault fixpoint check is ring-only");
  }

  std::set<std::string> phase_names;
  if (const auto phases_it = metrics->find("phases"); phases_it != metrics->end()) {
    if (!phases_it->second.is_array()) {
      return err(path + ".phases",
                 std::string("expected array (got ") + type_name(phases_it->second) + ")");
    }
    const auto& items = phases_it->second.items();
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string ppath = path + ".phases[" + std::to_string(i) + "]";
      const Json::Object* phase = nullptr;
      if (auto e = need_object(&items[i], ppath, &phase); !e.empty()) return e;
      if (auto e = reject_unknown(*phase, ppath, {"name", "from", "until"}); !e.empty()) {
        return e;
      }
      MetricPhase mp;
      if (auto e = get_string(*phase, ppath, "name", true, &mp.name); !e.empty()) return e;
      if (mp.name.empty()) return err(ppath + ".name", "must be non-empty");
      if (!phase_names.insert(mp.name).second) {
        return err(ppath + ".name", "duplicate phase name \"" + mp.name + "\"");
      }
      if (auto e = get_u64(*phase, ppath, "from", true, &mp.from); !e.empty()) return e;
      if (auto e = get_u64(*phase, ppath, "until", true, &mp.until); !e.empty()) return e;
      if (mp.until <= mp.from) return err(ppath + ".until", "must be > from");
      m.phase_defs.push_back(std::move(mp));
    }
  }

  if (const auto expect_it = metrics->find("expect"); expect_it != metrics->end()) {
    if (!expect_it->second.is_array()) {
      return err(path + ".expect",
                 std::string("expected array (got ") + type_name(expect_it->second) + ")");
    }
    const auto& items = expect_it->second.items();
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string epath = path + ".expect[" + std::to_string(i) + "]";
      const Json::Object* check = nullptr;
      if (auto e = need_object(&items[i], epath, &check); !e.empty()) return e;
      std::string kind;
      if (auto e = get_string(*check, epath, "kind", true, &kind); !e.empty()) return e;
      Expectation ex;
      if (kind == "flag") {
        if (!ring) return err(epath + ".kind", "\"flag\" expectations are ring-only");
        ex.kind = Expectation::Kind::kFlag;
        if (auto e = reject_unknown(*check, epath, {"kind", "name"}); !e.empty()) return e;
        if (auto e = get_string(*check, epath, "name", true, &ex.flag); !e.empty()) return e;
        if (ex.flag != "split_observed" && ex.flag != "remerged" &&
            ex.flag != "fixpoint_matches") {
          return err(epath + ".name", "\"" + ex.flag +
                                          "\" is not one of \"split_observed\", "
                                          "\"remerged\", \"fixpoint_matches\"");
        }
        if (!m.fixpoint) {
          return err(epath + ".name",
                     "flag expectations require $.metrics.fixpoint = 1 (the control run "
                     "computes them)");
        }
      } else if (kind == "phase_lt" || kind == "phase_ge" || kind == "hit_rate_lt" ||
                 kind == "hit_rate_ge") {
        if (kind == "phase_lt") ex.kind = Expectation::Kind::kPhaseLt;
        if (kind == "phase_ge") ex.kind = Expectation::Kind::kPhaseGe;
        if (kind == "hit_rate_lt") ex.kind = Expectation::Kind::kHitRateLt;
        if (kind == "hit_rate_ge") ex.kind = Expectation::Kind::kHitRateGe;
        if (ring && (ex.kind == Expectation::Kind::kHitRateLt ||
                     ex.kind == Expectation::Kind::kHitRateGe)) {
          return err(epath + ".kind", "hit-rate expectations are hierarchy-only");
        }
        if (auto e = reject_unknown(*check, epath, {"kind", "left", "right"}); !e.empty()) {
          return e;
        }
        if (auto e = get_string(*check, epath, "left", true, &ex.left); !e.empty()) return e;
        if (auto e = get_string(*check, epath, "right", true, &ex.right); !e.empty()) return e;
        for (const auto* side : {&ex.left, &ex.right}) {
          if (phase_names.count(*side) == 0) {
            return err(epath, "\"" + *side + "\" is not a defined $.metrics.phases name");
          }
        }
      } else if (kind == "counter_ge" || kind == "counter_lt") {
        if (ring) return err(epath + ".kind", "counter expectations are hierarchy-only");
        ex.kind = kind == "counter_ge" ? Expectation::Kind::kCounterGe
                                       : Expectation::Kind::kCounterLt;
        if (auto e = reject_unknown(*check, epath, {"kind", "counter", "threshold"});
            !e.empty()) {
          return e;
        }
        if (auto e = get_string(*check, epath, "counter", true, &ex.counter); !e.empty()) {
          return e;
        }
        bool known = false;
        for (const auto name : kCounterNames) known = known || ex.counter == name;
        if (!known) {
          std::string listed;
          for (const auto name : kCounterNames) {
            if (!listed.empty()) listed += ", ";
            listed += "\"" + std::string(name) + "\"";
          }
          return err(epath + ".counter",
                     "\"" + ex.counter + "\" is not one of " + listed);
        }
        if (auto e = get_u64(*check, epath, "threshold", true, &ex.threshold); !e.empty()) {
          return e;
        }
      } else {
        return err(epath + ".kind",
                   "\"" + kind + "\" is not one of \"phase_lt\", \"phase_ge\", "
                                 "\"hit_rate_lt\", \"hit_rate_ge\", \"counter_ge\", "
                                 "\"counter_lt\", \"flag\"");
      }
      m.expect.push_back(std::move(ex));
    }
  }
  return "";
}

}  // namespace

std::string Expectation::describe() const {
  switch (kind) {
    case Kind::kPhaseLt:
      return "phase_lt(" + left + ", " + right + ")";
    case Kind::kPhaseGe:
      return "phase_ge(" + left + ", " + right + ")";
    case Kind::kHitRateLt:
      return "hit_rate_lt(" + left + ", " + right + ")";
    case Kind::kHitRateGe:
      return "hit_rate_ge(" + left + ", " + right + ")";
    case Kind::kFlag:
      return "flag(" + flag + ")";
    case Kind::kCounterGe:
      return "counter_ge(" + counter + ", " + std::to_string(threshold) + ")";
    case Kind::kCounterLt:
      return "counter_lt(" + counter + ", " + std::to_string(threshold) + ")";
  }
  return "?";
}

std::vector<std::string> leaf_names(const std::vector<std::uint64_t>& branching) {
  std::vector<std::string> leaves;
  if (!branching.empty()) gen_names(branching, 0, "", nullptr, &leaves);
  return leaves;
}

std::vector<std::string> topology_names(const std::vector<std::uint64_t>& branching) {
  std::vector<std::string> all;
  std::vector<std::string> leaves;
  if (!branching.empty()) gen_names(branching, 0, "", &all, &leaves);
  return all;
}

std::string parse(const snapshot::Json& doc, Scenario& out) {
  out = Scenario{};
  if (!doc.is_object()) {
    return err("$", std::string("expected object (got ") + type_name(doc) + ")");
  }
  const Json::Object& top = doc.fields();
  if (auto e = reject_unknown(top, "$",
                              {"magic", "version", "name", "description", "seed", "system",
                               "workload", "faults", "attacker", "liveness", "metrics"});
      !e.empty()) {
    return e;
  }

  std::string magic;
  if (auto e = get_string(top, "$", "magic", true, &magic); !e.empty()) return e;
  if (magic != kScenarioMagic) {
    return err("$.magic", "\"" + magic + "\" is not \"" + std::string(kScenarioMagic) + "\"");
  }
  std::uint64_t version = 0;
  if (auto e = get_u64(top, "$", "version", true, &version); !e.empty()) return e;
  if (version != kScenarioVersion) {
    return err("$.version", "version " + std::to_string(version) + " unsupported (this "
                            "reader understands version " +
                                std::to_string(kScenarioVersion) + ")");
  }
  if (auto e = get_string(top, "$", "name", true, &out.name); !e.empty()) return e;
  if (out.name.empty()) return err("$.name", "must be non-empty");
  for (const char c : out.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) {
      return err("$.name", "\"" + out.name + "\" may only contain [a-z0-9_] (it names the "
                                             "report file)");
    }
  }
  if (auto e = get_string(top, "$", "description", false, &out.description); !e.empty()) {
    return e;
  }
  if (auto e = get_u64(top, "$", "seed", true, &out.seed); !e.empty()) return e;

  if (auto e = parse_system(top, out); !e.empty()) return e;
  if (auto e = parse_workload(top, out); !e.empty()) return e;
  if (auto e = parse_faults(top, out); !e.empty()) return e;
  if (auto e = parse_attacker(top, out); !e.empty()) return e;
  if (auto e = parse_liveness(top, out); !e.empty()) return e;
  if (auto e = parse_metrics(top, out); !e.empty()) return e;
  return "";
}

std::string validate(const snapshot::Json& doc) {
  Scenario ignored;
  return parse(doc, ignored);
}

std::string load_file(const std::string& path, Scenario& out) {
  std::ifstream in{path};
  if (!in) return path + ": cannot open";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  snapshot::Json doc;
  std::string error;
  if (!snapshot::parse_json(buffer.str(), doc, &error)) {
    return path + ": " + error;
  }
  if (auto e = parse(doc, out); !e.empty()) return path + ": " + e;
  return "";
}

}  // namespace hours::scenario
