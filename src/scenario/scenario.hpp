// Declarative experiment documents: the scenario DSL.
//
// Every DoS-resilience study used to be a hand-written bench binary; this
// module turns experiment authoring into data. A scenario is one JSON
// document (restricted to the snapshot::Json subset: u64, string, array,
// object — booleans are 0/1, fractions are decimal strings) carrying a
// versioned envelope plus five clauses:
//
//   {
//     "magic": "hours-scenario", "version": 1,
//     "name": "availability_under_churn", "seed": 48879,
//     "system":   { "kind": "ring" | "hierarchy", ... },
//     "workload": { "horizon": ..., "window": ..., "phases": [...] },
//     "faults":   { "plan": ["crash(3, 1500, 6000)", ...] },   // optional
//     "attacker": { "kind": "adaptive" | "strike" | "cache_busting", ... },
//     "metrics":  { "emit": [...], "phases": [...], "expect": [...] }
//   }
//
// The fault clause reuses FaultPlan::parse/describe() verbatim — one
// builder-call string per array element, exactly the text fuzz artifacts
// and snapshots already carry. The validator is hand-rolled in the style of
// the trace/snapshot validators: unknown keys are rejected, every field is
// type-checked, and errors name the exact path ($.workload.phases[2].rate).
// scenario::Runner (runner.hpp) assembles the described system, drives the
// workload, and emits a byte-deterministic metrics::JsonWriter report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "liveness/liveness.hpp"
#include "overlay/params.hpp"
#include "sim/fault_injector.hpp"
#include "snapshot/json.hpp"

namespace hours::scenario {

inline constexpr std::string_view kScenarioMagic = "hours-scenario";
inline constexpr std::uint64_t kScenarioVersion = 1;

/// Destination/name popularity within one workload phase.
struct Popularity {
  enum class Kind : std::uint8_t { kUniform, kZipf, kHotspot };
  Kind kind = Kind::kUniform;
  double exponent = 0.9;   ///< zipf
  std::uint64_t hot = 0;   ///< hotspot: index into the destination universe
  double fraction = 0.5;   ///< hotspot: probability mass on `hot`
};

/// One phase of the workload schedule; phases are contiguous and ordered by
/// strictly increasing `until`. Ring workloads use `interval` (ticks between
/// submissions); hierarchy workloads use `rate` (resolutions per second).
struct Phase {
  std::uint64_t until = 0;
  std::uint64_t interval = 0;
  std::uint64_t rate = 0;
  Popularity popularity;
};

enum class SystemKind : std::uint8_t { kRing, kHierarchy };
enum class BackendKind : std::uint8_t { kGraph, kEvent };
enum class ResolverKind : std::uint8_t { kSerial, kConcurrent };

/// Ring system: RingSimulation + QueryClient driven in simulator ticks.
struct RingSystem {
  std::uint32_t size = 16;
  overlay::OverlayParams params;
  std::optional<std::uint64_t> seed;  ///< table seed; absent = library default
  std::uint64_t probe_period = 1'000;
  std::uint32_t probe_failure_threshold = 1;
  std::uint64_t client_deadline = 8'000;  ///< ticks
};

/// Hierarchy system: HoursSystem over the graph or event backend, queried
/// through a TTL-bounded resolver; clocks are backend seconds.
struct HierarchySystem {
  BackendKind backend = BackendKind::kEvent;
  /// Fan-out per level: {6, 6} admits 6 level-1 zones ("n0".."n5") with 6
  /// leaves each ("n0.n0".."n5.n5"). Leaves carry one A record and form the
  /// workload's name universe, in admission (depth-first) order.
  std::vector<std::uint64_t> branching;
  overlay::OverlayParams params;
  std::uint64_t record_ttl = 90;         ///< seconds
  std::uint64_t ticks_per_second = 1'000;
  std::uint64_t client_deadline = 6'000;  ///< ticks (event backend)
  ResolverKind resolver = ResolverKind::kSerial;
  std::uint64_t resolver_capacity = 1'024;
};

enum class AttackerKind : std::uint8_t { kNone, kAdaptive, kStrike, kCacheBusting };

/// Attack clause. Adaptive is ring-only (a trace-subscribed re-striker);
/// strike and cache_busting are hierarchy-only, with times in seconds.
struct Attacker {
  AttackerKind kind = AttackerKind::kNone;
  // -- adaptive (sim::AdaptiveAttackerConfig mirror) ---------------------------
  std::uint32_t neighborhood = 3;
  std::uint64_t reaction_delay = 500;
  std::uint64_t strike_duration = 15'000;
  std::uint32_t max_strikes = 2;
  std::uint64_t cooldown = 10'000;
  // -- strike ------------------------------------------------------------------
  std::vector<std::string> victims;  ///< admitted names (event: ids resolved at run)
  std::uint64_t at = 0;
  std::uint64_t duration = 0;
  std::uint32_t strikes = 1;
  std::uint64_t gap = 0;
  // -- cache_busting -----------------------------------------------------------
  /// The attacker owns a side zone "cb" of `hosts` resolvable leaves and
  /// cycles through them sequentially at `rate` resolutions per second over
  /// [from, until) — every query a valid name with near-zero reuse, so each
  /// one misses, costs an authoritative lookup, and evicts a cached answer
  /// (Ferretti & Ghini's random-query-string DoS against resolver caches).
  std::uint64_t hosts = 256;
  std::uint64_t rate = 0;
  std::uint64_t from = 0;
  std::uint64_t until = 0;
};

/// Named measurement window ([from, until), workload time units).
struct MetricPhase {
  std::string name;
  std::uint64_t from = 0;
  std::uint64_t until = 0;
};

/// Declarative pass/fail check evaluated by the runner.
struct Expectation {
  enum class Kind : std::uint8_t {
    kPhaseLt,    ///< delivery/availability(left) <  delivery/availability(right)
    kPhaseGe,    ///< delivery/availability(left) >= delivery/availability(right)
    kHitRateLt,  ///< hit_rate(left) <  hit_rate(right) — hierarchy only
    kHitRateGe,  ///< hit_rate(left) >= hit_rate(right) — hierarchy only
    kFlag,       ///< named boolean in the report must be true — ring only
    kCounterGe,  ///< resolver stat `counter` >= threshold — hierarchy only
    kCounterLt,  ///< resolver stat `counter` <  threshold — hierarchy only
  };
  Kind kind = Kind::kPhaseLt;
  std::string left;
  std::string right;
  std::string flag;     ///< "split_observed" | "remerged" | "fixpoint_matches"
  std::string counter;  ///< resolver stat name (counter_ge / counter_lt)
  std::uint64_t threshold = 0;

  /// Human-readable form used in reports: "phase_lt(during, pre)".
  [[nodiscard]] std::string describe() const;
};

/// Report sections the runner may emit, in canonical output order.
struct MetricsSpec {
  bool timeline = true;   ///< ring: windowed delivery timeline
  bool traffic = true;    ///< ring: per-window repair/claim/link-drop deltas
  bool windows = true;    ///< hierarchy: per-window asked/answered/hits
  bool phases = true;
  bool client = true;
  bool faults = true;
  bool counters = false;  ///< ring: full registry snapshot
  bool resolver = true;   ///< hierarchy: resolver stats
  bool attacker = true;
  /// Ring only: run an identically seeded no-fault, no-workload control to
  /// the horizon and report whether the healed pointer tables match the
  /// no-fault fixpoint byte for byte (plus split/remerge observations).
  bool fixpoint = false;
  std::vector<MetricPhase> phase_defs;
  std::vector<Expectation> expect;
};

/// A fully validated scenario document.
struct Scenario {
  std::string name;
  std::string description;
  std::uint64_t seed = 0;
  SystemKind kind = SystemKind::kRing;
  RingSystem ring;
  HierarchySystem hierarchy;
  std::vector<Phase> phases;
  std::uint64_t horizon = 0;       ///< ticks (ring) or seconds (hierarchy)
  std::uint64_t window = 0;
  std::uint64_t start = 200;       ///< ring: first submission instant
  bool alive_sources = false;      ///< ring: redraw dead sources
  std::vector<std::string> fault_lines;
  sim::FaultPlan faults;           ///< parsed from fault_lines
  Attacker attacker;
  /// Evidence-source selection for the liveness plane ($.liveness clause):
  /// probe_only (the default) keeps timeout-only inference; gossip
  /// piggybacks suspicion digests on transport traffic and, on hierarchy
  /// systems, arms the resolver's negative-cache defense.
  liveness::Config liveness;
  MetricsSpec metrics;
};

/// Validates `doc` against the scenario schema and fills `out`. Returns ""
/// on success, else one actionable error naming the offending path
/// ("$.workload.phases[2].rate: expected u64"). Unknown keys anywhere in
/// the document are rejected.
[[nodiscard]] std::string parse(const snapshot::Json& doc, Scenario& out);

/// Validation without retaining the result — the --validate-only entry.
[[nodiscard]] std::string validate(const snapshot::Json& doc);

/// Reads, parses, and validates a scenario file.
[[nodiscard]] std::string load_file(const std::string& path, Scenario& out);

/// The leaf-name universe `branching` generates, in admission order —
/// exposed so tests and docs can state the hotspot indexing rule.
[[nodiscard]] std::vector<std::string> leaf_names(const std::vector<std::uint64_t>& branching);

/// Every generated name (zones and leaves) in admission order: parents
/// before children, depth-first — the order the runner admits them.
[[nodiscard]] std::vector<std::string> topology_names(
    const std::vector<std::uint64_t>& branching);

}  // namespace hours::scenario
