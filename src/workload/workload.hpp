// Query-workload generators for experiments and examples.
//
// The paper's evaluation feeds streams of queries into the hierarchy
// (uniform source/destination pairs in Section 6.1, a fixed hot destination
// in Section 6.2), and its caching discussion leans on the Zipf-like
// popularity of real DNS/web workloads [Breslau99, Jung01]. This module
// provides those three patterns behind one sampler interface so benches,
// tests and examples draw from identical, seeded distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/xoshiro256.hpp"
#include "util/contracts.hpp"

namespace hours::workload {

/// Samples item indices from [0, universe).
class Sampler {
 public:
  virtual ~Sampler() = default;
  Sampler() = default;
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  [[nodiscard]] virtual std::size_t universe() const noexcept = 0;
  [[nodiscard]] virtual std::size_t next() = 0;
};

/// Uniform over the universe — Section 6.1's random source/destination pairs.
class UniformSampler final : public Sampler {
 public:
  UniformSampler(std::size_t universe, std::uint64_t seed) : universe_(universe), rng_(seed) {
    HOURS_EXPECTS(universe >= 1);
  }
  [[nodiscard]] std::size_t universe() const noexcept override { return universe_; }
  [[nodiscard]] std::size_t next() override {
    return static_cast<std::size_t>(rng_.below(universe_));
  }

 private:
  std::size_t universe_;
  rng::Xoshiro256 rng_;
};

/// Zipf(s): P(rank i) ~ 1/(i+1)^s. s = 0 degenerates to uniform; web/DNS
/// traces sit around s ~ 0.7-1.0 [Breslau99].
class ZipfSampler final : public Sampler {
 public:
  ZipfSampler(std::size_t universe, double exponent, std::uint64_t seed);
  [[nodiscard]] std::size_t universe() const noexcept override { return cdf_.size(); }
  [[nodiscard]] std::size_t next() override;
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;
  rng::Xoshiro256 rng_;
};

/// Hotspot: one fixed destination with probability `hot_fraction`, uniform
/// otherwise — Section 6.2's attacker-interesting node D plus background
/// traffic.
class HotspotSampler final : public Sampler {
 public:
  HotspotSampler(std::size_t universe, std::size_t hot_item, double hot_fraction,
                 std::uint64_t seed);
  [[nodiscard]] std::size_t universe() const noexcept override { return universe_; }
  [[nodiscard]] std::size_t next() override;

 private:
  std::size_t universe_;
  std::size_t hot_item_;
  double hot_fraction_;
  rng::Xoshiro256 rng_;
};

}  // namespace hours::workload
