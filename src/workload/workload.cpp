#include "workload/workload.hpp"

#include <cmath>

namespace hours::workload {

ZipfSampler::ZipfSampler(std::size_t universe, double exponent, std::uint64_t seed)
    : exponent_(exponent), cdf_(universe), rng_(seed) {
  HOURS_EXPECTS(universe >= 1);
  HOURS_EXPECTS(exponent >= 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < universe; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::next() {
  const double u = rng_.uniform();
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

HotspotSampler::HotspotSampler(std::size_t universe, std::size_t hot_item, double hot_fraction,
                               std::uint64_t seed)
    : universe_(universe), hot_item_(hot_item), hot_fraction_(hot_fraction), rng_(seed) {
  HOURS_EXPECTS(universe >= 1);
  HOURS_EXPECTS(hot_item < universe);
  HOURS_EXPECTS(hot_fraction >= 0.0 && hot_fraction <= 1.0);
}

std::size_t HotspotSampler::next() {
  if (rng_.bernoulli(hot_fraction_)) return hot_item_;
  return static_cast<std::size_t>(rng_.below(universe_));
}

}  // namespace hours::workload
