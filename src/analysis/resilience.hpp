// Closed-form DoS-resilience analysis from Section 5 of the paper.
//
// These formulas drive the Figure-4 curves and serve as oracles for the
// Monte-Carlo simulations (the benches print analysis and simulation side by
// side; the tests assert they agree within sampling error).
#pragma once

#include <cstdint>

namespace hours::analysis {

/// H_n = sum_{j=1..n} 1/j (H_0 = 0).
[[nodiscard]] double harmonic(std::uint64_t n);

/// Expected sibling-pointer count of one node:
///   base (k=1):  H_{N-1}
///   enhanced:    sum_d min(1, k/d) = k + k (H_{N-1} - H_k)    for N-1 >= k.
[[nodiscard]] double expected_table_size(std::uint64_t n, std::uint32_t k);

/// Expected greedy path length between random members of a healthy base-
/// design overlay. With ~H_{N-1} pointers per node drawn from the 1/d
/// distribution, each hop halves the remaining distance in expectation on a
/// log scale, giving ~ln N hops — the paper observes "it approximates ln N"
/// (Figure 7), and bench/fig7_scalability confirms the constant is ~0.96.
[[nodiscard]] double expected_base_path_length(std::uint64_t n);

/// Equation (1): probability that intra-overlay forwarding toward a given
/// OD succeeds under a *random* attack of density alpha in an overlay of n
/// nodes with redundancy k:
///   P = 1 - alpha^k * Prod_{j=k+1}^{n-1} (1 - k/j + k*alpha/j).
[[nodiscard]] double delivery_random_attack(std::uint32_t n, std::uint32_t k, double alpha);

/// Equation (2): probability of success under the optimal *neighbor* attack
/// (the alpha*n counter-clockwise neighbors of the OD are shut down):
///   P = 1 - Prod_{j=alpha*n+1}^{n-1} (1 - min(1, k/j)).
[[nodiscard]] double delivery_neighbor_attack(std::uint32_t n, std::uint32_t k, double alpha);

/// Section 5.2: probability that inter-overlay forwarding fails when the
/// next-level overlay has attack density alpha and the exit holds q nephew
/// pointers: alpha^q.
[[nodiscard]] double inter_overlay_failure(double alpha, std::uint32_t q);

/// Theorem 3 scaling (up to constants): expected overlay hops under a random
/// attack of density alpha.
///
/// The paper prints F(i) = O(log N / (1 - log(1 - alpha))), but that factor
/// *decreases* in alpha, contradicting the surrounding text ("forwarding
/// efficiency degrades gracefully as the attacker's power increases") and
/// Figure 9. We implement the self-consistent reading
///   F(i) ~ (1 - log(1 - alpha)) * log N
/// (log(1-alpha) <= 0, so the factor grows from 1 at alpha = 0), which
/// reduces to ln N with no attack and diverges as alpha -> 1. The deviation
/// is recorded in EXPERIMENTS.md.
[[nodiscard]] double theorem3_hops(std::uint32_t n, double alpha);

/// Theorem 5: an insider that drops queries at index distance d from the
/// victim reduces the victim's accessibility by 1/(d+1).
[[nodiscard]] double theorem5_damage(std::uint32_t d);

/// Expected counter-clockwise backward steps until an exit node under a
/// neighbor attack of width `attacked` (the OD plus its `attacked` closest
/// counter-clockwise siblings are dead) in an overlay of n nodes:
///
///   E[steps] = sum_{m >= 1} P(no entry-holder within the first m alive
///              CCW nodes) = sum_m prod_{j=attacked+1}^{attacked+m} (1 - k/j),
///
/// truncated at the ring size (walks that find no holder at all wrap and
/// fail; they are excluded, matching delivered-only hop averages). This is
/// the constant behind Theorem 4's O(N_a) term — approximately
/// attacked / (k - 1) for attacked >> k — and quantifies why Figure 10's
/// absolute hop counts must scale the way they do (EXPERIMENTS.md).
[[nodiscard]] double expected_backward_steps(std::uint32_t n, std::uint32_t k,
                                             std::uint32_t attacked);

}  // namespace hours::analysis
