#include "analysis/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace hours::analysis {

double harmonic(std::uint64_t n) {
  // Exact summation below a threshold; asymptotic expansion above it.
  if (n == 0) return 0.0;
  if (n <= 1'000'000) {
    double h = 0.0;
    for (std::uint64_t j = 1; j <= n; ++j) h += 1.0 / static_cast<double>(j);
    return h;
  }
  constexpr double kEulerMascheroni = 0.57721566490153286060;
  const double x = static_cast<double>(n);
  return std::log(x) + kEulerMascheroni + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
}

double expected_table_size(std::uint64_t n, std::uint32_t k) {
  HOURS_EXPECTS(n >= 1 && k >= 1);
  if (n == 1) return 0.0;
  const std::uint64_t max_d = n - 1;
  if (max_d <= k) return static_cast<double>(max_d);
  return static_cast<double>(k) +
         static_cast<double>(k) * (harmonic(max_d) - harmonic(k));
}

double expected_base_path_length(std::uint64_t n) {
  HOURS_EXPECTS(n >= 2);
  return std::log(static_cast<double>(n));
}

double delivery_random_attack(std::uint32_t n, std::uint32_t k, double alpha) {
  HOURS_EXPECTS(n >= 2 && k >= 1);
  HOURS_EXPECTS(alpha >= 0.0 && alpha <= 1.0);
  double product = std::pow(alpha, static_cast<double>(k));
  for (std::uint32_t j = k + 1; j <= n - 1; ++j) {
    const double kj = static_cast<double>(k) / static_cast<double>(j);
    product *= 1.0 - kj + kj * alpha;
  }
  return 1.0 - product;
}

double delivery_neighbor_attack(std::uint32_t n, std::uint32_t k, double alpha) {
  HOURS_EXPECTS(n >= 2 && k >= 1);
  HOURS_EXPECTS(alpha >= 0.0 && alpha <= 1.0);
  const auto attacked = static_cast<std::uint32_t>(alpha * n);
  double product = 1.0;
  for (std::uint32_t j = attacked + 1; j <= n - 1; ++j) {
    const double p = std::min(1.0, static_cast<double>(k) / static_cast<double>(j));
    product *= 1.0 - p;
  }
  // If every distance class <= k is inside the attacked range the product
  // above already reflects it; attacked >= n-1 kills all candidates.
  if (attacked >= n - 1) return 0.0;
  return 1.0 - product;
}

double inter_overlay_failure(double alpha, std::uint32_t q) {
  HOURS_EXPECTS(alpha >= 0.0 && alpha <= 1.0);
  return std::pow(alpha, static_cast<double>(q));
}

double theorem3_hops(std::uint32_t n, double alpha) {
  HOURS_EXPECTS(n >= 2);
  HOURS_EXPECTS(alpha >= 0.0 && alpha < 1.0);
  return std::log(static_cast<double>(n)) * (1.0 - std::log(1.0 - alpha));
}

double theorem5_damage(std::uint32_t d) { return 1.0 / (static_cast<double>(d) + 1.0); }

double expected_backward_steps(std::uint32_t n, std::uint32_t k, std::uint32_t attacked) {
  HOURS_EXPECTS(n >= 2 && k >= 1);
  HOURS_EXPECTS(attacked < n - 1);
  // Conditioned on delivery: E[steps | found] = sum_m survival(m) renormalized
  // by P(found). survival(m) = prod_{j=a+1}^{a+m} max(0, 1 - k/j).
  double survival = 1.0;
  double expected = 0.0;
  for (std::uint32_t m = 1; attacked + m <= n - 1; ++m) {
    const std::uint32_t j = attacked + m;
    survival *= std::max(0.0, 1.0 - static_cast<double>(k) / static_cast<double>(j));
    expected += survival;  // P(steps > m) summed = E[steps], pre-truncation
  }
  const double p_found = 1.0 - survival;
  if (p_found <= 0.0) return 0.0;
  // E[steps * found] = sum_{m} P(m < steps, found eventually); subtracting
  // the never-found mass (which contributed `survival` at every term).
  const double found_mass =
      expected - survival * static_cast<double>(n - 1 - attacked);
  return found_mass / p_found;
}

}  // namespace hours::analysis
